//! Multi-node ingestion: the cluster routing table, the coordinator
//! fold, and the kill-and-restart harness.
//!
//! A cluster is N independent [`TelemetryServer`] nodes; the routing
//! table sends every `(app, device)` pair to one node
//! ([`node_for`] — the per-node shard hash generalized up one level),
//! so a device's batches stay ordered without any cross-node
//! coordination. The coordinator holds no state of its own: to answer
//! a query it asks every node to `Export` its raw aggregation state
//! (the semilattice elements, not the lossy top-N projection) and folds
//! the snapshots through [`AggregationStore::absorb`] — the exact merge
//! the single-node store applies internally, which is why the
//! cluster-folded report is **byte-identical** to a single-node run
//! over the same batches (`tests/cluster.rs` pins this clean, under
//! chaos, and across kill-and-restart).
//!
//! Crashes are first-class: [`Cluster::kill_node`] stops a node
//! abruptly (no flush, no snapshot — in-memory state is gone) and
//! [`Cluster::restart_node`] brings it back over the same WAL
//! directory, replaying to the pre-crash aggregate. The
//! [`NodeCrashPlan`] drives *when* and *whom* deterministically, in the
//! `hd-faults` draw-everything-up-front style.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use hd_faults::{NetFaultConfig, NodeCrashPlan};
use hd_fleet::{run_fleet_with_reports, FleetSpec};
use serde::{Deserialize, Serialize};

use crate::client::{Uploader, UploaderConfig};
use crate::error::TelemetryError;
use crate::fingerprint::node_for;
use crate::report::TelemetryReport;
use crate::server::{ServerStats, TelemetryServer};
use crate::store::AggregationStore;
use crate::wire::{TelemetryItem, UploadBatch};

/// Cluster shape. Every node runs the same per-node layout.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of server nodes.
    pub nodes: usize,
    /// Shard workers per node.
    pub shards: usize,
    /// Bounded queue depth per shard.
    pub queue_capacity: usize,
    /// I/O workers per node.
    pub io_workers: usize,
    /// Durability root: node `i` logs under `<root>/node-<i>/`.
    /// `None` runs in-memory (and [`Cluster::restart_node`] refuses).
    pub wal_root: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            nodes: 3,
            shards: 2,
            queue_capacity: 64,
            io_workers: 1,
            wal_root: None,
        }
    }
}

struct ClusterNode {
    server: Option<TelemetryServer>,
    addr: SocketAddr,
    wal_dir: Option<PathBuf>,
}

/// A running loopback cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<ClusterNode>,
    /// Batches recovered from WAL replay, summed over every restart.
    recovered: u64,
}

impl Cluster {
    /// Launches every node on an ephemeral loopback port.
    pub fn launch(cfg: ClusterConfig) -> Result<Cluster, TelemetryError> {
        if cfg.nodes == 0 {
            return Err(TelemetryError::Config {
                field: "nodes",
                reason: "must be at least 1".to_string(),
            });
        }
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for id in 0..cfg.nodes {
            let wal_dir = cfg
                .wal_root
                .as_ref()
                .map(|root| root.join(format!("node-{id}")));
            let server = Cluster::start_node(&cfg, id, wal_dir.as_deref())?;
            nodes.push(ClusterNode {
                addr: server.local_addr(),
                server: Some(server),
                wal_dir,
            });
        }
        Ok(Cluster {
            cfg,
            nodes,
            recovered: 0,
        })
    }

    fn start_node(
        cfg: &ClusterConfig,
        id: usize,
        wal_dir: Option<&Path>,
    ) -> Result<TelemetryServer, TelemetryError> {
        let mut builder = TelemetryServer::builder()
            .addr("127.0.0.1:0")
            .shards(cfg.shards)
            .queue_capacity(cfg.queue_capacity)
            .io_workers(cfg.io_workers)
            .node_id(id as u64);
        if let Some(dir) = wal_dir {
            builder = builder.wal_dir(dir.to_string_lossy().to_string());
        }
        builder.start()
    }

    /// Number of nodes (routing table size).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node an `(app, device)` pair routes to.
    pub fn route(&self, app: &str, device: u32) -> usize {
        node_for(app, device, self.nodes.len())
    }

    /// The current address of `node` (changes across a restart —
    /// ephemeral ports are not stable identities; the routing table
    /// index is).
    pub fn addr(&self, node: usize) -> SocketAddr {
        self.nodes[node].addr
    }

    /// Batches recovered from WAL replay, summed over every restart.
    pub fn batches_recovered(&self) -> u64 {
        self.recovered
    }

    /// Crash-stops `node`: threads die without flushing, snapshotting,
    /// or notifying clients; its in-memory aggregate is lost. Only the
    /// WAL survives.
    pub fn kill_node(&mut self, node: usize) -> Result<(), TelemetryError> {
        match self.nodes[node].server.take() {
            Some(server) => {
                server.kill();
                Ok(())
            }
            None => Err(TelemetryError::Protocol(format!(
                "node {node} is already down"
            ))),
        }
    }

    /// Restarts a killed node over its WAL directory, replaying back to
    /// the pre-crash aggregate.
    pub fn restart_node(&mut self, node: usize) -> Result<(), TelemetryError> {
        if self.nodes[node].server.is_some() {
            return Err(TelemetryError::Protocol(format!(
                "node {node} is still running"
            )));
        }
        let Some(wal_dir) = self.nodes[node].wal_dir.clone() else {
            return Err(TelemetryError::Config {
                field: "wal_root",
                reason: "cannot restart an in-memory node (no WAL to replay)".to_string(),
            });
        };
        let server = Cluster::start_node(&self.cfg, node, Some(&wal_dir))?;
        self.recovered += server.stats().batches_recovered;
        self.nodes[node].addr = server.local_addr();
        self.nodes[node].server = Some(server);
        Ok(())
    }

    /// The coordinator fold, over the wire: asks every node to export
    /// its raw state and absorbs the snapshots into one store.
    pub fn export_fold(&self) -> Result<AggregationStore, TelemetryError> {
        let mut folded = AggregationStore::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if node.server.is_none() {
                return Err(TelemetryError::Protocol(format!(
                    "node {id} is down; restart it before aggregating"
                )));
            }
            let snapshot = Uploader::plain(node.addr).export()?;
            folded.absorb(&snapshot);
        }
        Ok(folded)
    }

    /// The cluster-wide top-N report (the coordinator fold projected).
    pub fn aggregate(&self, top_n: usize) -> Result<TelemetryReport, TelemetryError> {
        Ok(self.export_fold()?.report(top_n))
    }

    /// Gracefully shuts every node down and returns the final per-node
    /// stats (index = node id).
    pub fn shutdown(mut self) -> Result<Vec<ServerStats>, TelemetryError> {
        let mut stats = Vec::with_capacity(self.nodes.len());
        for node in &mut self.nodes {
            match node.server.take() {
                Some(server) => {
                    Uploader::plain(node.addr).shutdown()?;
                    stats.push(server.join());
                }
                None => stats.push(ServerStats::default()),
            }
        }
        Ok(stats)
    }
}

/// Everything one cluster differential run produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterRunOutcome {
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Upload waves the run was split into.
    pub waves: usize,
    /// `(after_wave, node)` kill-and-restart events that fired.
    pub crashes: Vec<(usize, usize)>,
    /// Batches replayed from WALs across all restarts.
    pub batches_recovered: u64,
    /// The cluster-folded report.
    pub report: TelemetryReport,
    /// The single-node in-process reference over the same batches.
    pub reference: TelemetryReport,
    /// Whether the two reports serialize to the same bytes.
    pub byte_identical: bool,
    /// Whether the folded raw state (apps, devices, fingerprints —
    /// ingest counters excluded, since chaos duplicates only exist on
    /// the networked path) matches the reference state byte-for-byte.
    pub state_identical: bool,
    /// Final per-node server stats.
    pub node_stats: Vec<ServerStats>,
}

static CLUSTER_RUN: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory for one cluster run's WALs.
fn scratch_root(root_seed: u64) -> PathBuf {
    let n = CLUSTER_RUN.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hd-telemetry-cluster-{}-{root_seed}-{n}",
        std::process::id()
    ))
}

/// Serializes a store's identity (apps, devices, fingerprints) with the
/// ingest counters zeroed, for cross-path comparison.
fn identity_bytes(store: &AggregationStore) -> String {
    let mut snap = store.snapshot();
    snap.stats = Default::default();
    serde_json::to_string(&snap).expect("snapshot serializes")
}

/// Runs the fleet, uploads every job's report into an N-node loopback
/// cluster (routing by [`node_for`]), executes the crash schedule
/// between waves, and differentially checks the coordinator fold
/// against a single in-process store over the same batches.
pub fn run_cluster_telemetry(
    spec: &FleetSpec,
    net: &NetFaultConfig,
    nodes: usize,
    top_n: usize,
    crash: &NodeCrashPlan,
) -> ClusterRunOutcome {
    let (_, jobs) = run_fleet_with_reports(spec);
    let waves = crash.waves().max(1);

    let root = scratch_root(spec.root_seed);
    let mut cluster = Cluster::launch(ClusterConfig {
        nodes,
        wal_root: Some(root.clone()),
        ..ClusterConfig::default()
    })
    .expect("launch loopback cluster");

    // Reference: one in-process store ingesting every batch once.
    let mut reference = AggregationStore::new();

    // Upload wave by wave, single-threaded for a deterministic
    // interleaving with the crash schedule. Each device goes through
    // its own seeded uploader, so the chaos fault streams match the
    // fleet differential's.
    let chunk = jobs.len().div_ceil(waves).max(1);
    let mut crashes = Vec::new();
    for (wave, wave_jobs) in jobs.chunks(chunk).enumerate() {
        for job in wave_jobs {
            let batch = UploadBatch {
                app: job.app.clone(),
                device: job.device,
                seq: 0,
                items: vec![TelemetryItem::Report(job.report.clone())],
            };
            reference.ingest(&batch);
            let node = cluster.route(&job.app, job.device);
            let cfg = UploaderConfig {
                net_faults: *net,
                ..UploaderConfig::default()
            };
            let mut uploader =
                Uploader::new(cluster.addr(node), job.device as u64, spec.root_seed, cfg);
            uploader.upload(&batch).unwrap_or_else(|e| {
                panic!("device {} upload to node {node} failed: {e}", job.device)
            });
        }
        if let Some(victim) = crash.crash_after(wave) {
            let victim = victim % nodes;
            cluster.kill_node(victim).expect("kill scheduled node");
            cluster.restart_node(victim).expect("restart killed node");
            crashes.push((wave, victim));
        }
    }

    let folded = cluster.export_fold().expect("coordinator fold");
    let report = folded.report(top_n);
    let reference_report = reference.report(top_n);
    let byte_identical = report.to_json() == reference_report.to_json();
    let state_identical = identity_bytes(&folded) == identity_bytes(&reference);

    let batches_recovered = cluster.batches_recovered();
    let node_stats = cluster.shutdown().expect("cluster shutdown");
    let _ = std::fs::remove_dir_all(&root);

    ClusterRunOutcome {
        nodes,
        waves,
        crashes,
        batches_recovered,
        report,
        reference: reference_report,
        byte_identical,
        state_identical,
        node_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hangdoctor::HangBugReport;

    #[test]
    fn launch_route_and_fold_an_empty_cluster() {
        let cluster = Cluster::launch(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        })
        .unwrap();
        assert_eq!(cluster.nodes(), 3);
        // Routing is deterministic and total.
        for device in 0..20u32 {
            let n = cluster.route("app", device);
            assert!(n < 3);
            assert_eq!(n, cluster.route("app", device));
        }
        let report = cluster.aggregate(5).unwrap();
        assert_eq!(report.devices, 0);
        let stats = cluster.shutdown().unwrap();
        assert_eq!(stats.len(), 3);
    }

    #[test]
    fn zero_nodes_is_a_typed_config_error() {
        match Cluster::launch(ClusterConfig {
            nodes: 0,
            ..ClusterConfig::default()
        }) {
            Err(TelemetryError::Config { field, .. }) => assert_eq!(field, "nodes"),
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn control_dialect_reaches_individual_cluster_nodes() {
        use crate::client::ControlClient;
        use hangdoctor::ActionState;
        use hd_control::{CohortHealth, SyncReport};

        let cluster = Cluster::launch(ClusterConfig {
            nodes: 2,
            ..ClusterConfig::default()
        })
        .unwrap();

        // Each node runs its own controller; a device syncs with the
        // node its telemetry routes to, and state stays queryable there.
        let mut ctl = ControlClient::connect(cluster.addr(0));
        let directives = ctl
            .sync(SyncReport {
                device: 7,
                app: "k9mail".to_string(),
                states: vec![(0, ActionState::Suspicious, 3)],
                stack: None,
                health: CohortHealth::default(),
            })
            .unwrap();
        assert!(directives.diagnosis_enabled);
        assert!(directives.thresholds.is_none());
        let states = ctl.query_state(7).unwrap();
        assert_eq!(states, vec![(0, ActionState::Suspicious, 3)]);
        // Close the control connection (not the node — the cluster
        // shutdown below owns that) so the io workers can drain.
        drop(ctl);

        // The other node never heard of the device.
        let mut other = ControlClient::connect(cluster.addr(1));
        assert!(other.query_state(7).is_err());
        drop(other);

        cluster.shutdown().unwrap();
    }

    #[test]
    fn restarting_an_in_memory_node_is_refused() {
        let mut cluster = Cluster::launch(ClusterConfig {
            nodes: 1,
            ..ClusterConfig::default()
        })
        .unwrap();
        // Seed one batch so the kill demonstrably loses state.
        let batch = UploadBatch {
            app: "app".to_string(),
            device: 1,
            seq: 0,
            items: vec![TelemetryItem::Report(HangBugReport::new("app"))],
        };
        Uploader::plain(cluster.addr(0)).upload(&batch).unwrap();
        cluster.kill_node(0).unwrap();
        match cluster.restart_node(0) {
            Err(TelemetryError::Config { field, .. }) => assert_eq!(field, "wal_root"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }
}
