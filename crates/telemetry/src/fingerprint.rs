//! Ingest fingerprints and shard routing.
//!
//! Both are FNV-1a 64 over deterministic byte strings, so they are
//! stable across processes, platforms, and runs:
//!
//! * [`batch_fingerprint`] hashes a batch's canonical compact JSON.
//!   Because the serde shim serializes maps and sets sorted, the same
//!   logical batch always produces the same bytes, which makes the
//!   fingerprint a content address — the key the idempotent ingest
//!   dedups duplicate deliveries on.
//! * [`shard_for`] hashes the `(app, device)` pair. All batches of one
//!   device route to one shard worker, preserving per-device ordering
//!   without any cross-shard coordination.

use crate::wire::UploadBatch;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content fingerprint of an upload batch: FNV-1a 64 over its canonical
/// compact JSON. Re-sending the same batch (retry after a NACK, a
/// duplicated frame, an at-least-once uploader) reproduces the same
/// fingerprint, so the store can absorb the duplicate.
pub fn batch_fingerprint(batch: &UploadBatch) -> u64 {
    let json = serde_json::to_string(batch).expect("batch serializes");
    fnv1a(json.as_bytes())
}

/// Shard index for an `(app, device)` pair. Deterministic, so the same
/// device always lands on the same worker queue.
pub fn shard_for(app: &str, device: u32, shards: usize) -> usize {
    debug_assert!(shards > 0, "need at least one shard");
    let mut h = fnv1a(app.as_bytes());
    for b in device.to_be_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards as u64) as usize
}

/// Cluster node index for an `(app, device)` pair — [`shard_for`]
/// generalized to the cluster routing table. The FNV hash is passed
/// through a full avalanche finalizer (MurmurMix-style) before the
/// modulo: a salt-and-multiply alone only permutes the low bits, which
/// `% nodes` then maps back onto a pure function of the shard index —
/// an N-node cluster whose nodes run N shards would pin every batch
/// routed to node `i` onto a single shard, idling the rest of each
/// node's workers.
pub fn node_for(app: &str, device: u32, nodes: usize) -> usize {
    debug_assert!(nodes > 0, "need at least one node");
    let mut h = fnv1a(app.as_bytes());
    for b in device.to_be_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    (h % nodes as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::TelemetryItem;
    use hangdoctor::HangBugReport;

    fn batch(app: &str, device: u32, seq: u64) -> UploadBatch {
        UploadBatch {
            app: app.to_string(),
            device,
            seq,
            items: vec![TelemetryItem::Report(HangBugReport::new(app))],
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_addressed() {
        let a = batch("app", 1, 0);
        assert_eq!(batch_fingerprint(&a), batch_fingerprint(&a.clone()));
        // Any field change moves the fingerprint.
        assert_ne!(
            batch_fingerprint(&a),
            batch_fingerprint(&batch("app", 2, 0))
        );
        assert_ne!(
            batch_fingerprint(&a),
            batch_fingerprint(&batch("app", 1, 1))
        );
        assert_ne!(batch_fingerprint(&a), batch_fingerprint(&batch("b", 1, 0)));
    }

    #[test]
    fn known_fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sharding_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 7, 16] {
            for device in 0..50u32 {
                let s = shard_for("app", device, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for("app", device, shards));
            }
        }
    }

    #[test]
    fn node_routing_is_decorrelated_from_shard_routing() {
        for nodes in [1usize, 2, 3, 5] {
            for device in 0..50u32 {
                let n = node_for("app", device, nodes);
                assert!(n < nodes);
                assert_eq!(n, node_for("app", device, nodes));
            }
        }
        // With nodes == shards, devices routed to one node must still
        // spread over that node's shards (the salt decorrelates the
        // two hashes).
        let n = 4usize;
        let mut shards_on_node0 = std::collections::BTreeSet::new();
        for device in 0..500u32 {
            if node_for("app", device, n) == 0 {
                shards_on_node0.insert(shard_for("app", device, n));
            }
        }
        assert!(
            shards_on_node0.len() > 1,
            "node 0's devices all collapsed onto shard(s) {shards_on_node0:?}"
        );
    }
}
