//! # hd-telemetry — networked hang-report ingestion and aggregation
//!
//! Hang Doctor's runtime detectors produce per-device
//! [`HangBugReport`](hangdoctor::HangBugReport)s; the paper's workflow
//! has developers triage them fleet-wide. This crate is that backend:
//! a TCP ingestion server, a device-side uploader, and a cross-device
//! aggregation store that clusters reports into hang groups keyed
//! `(app, action, root-cause API)` and exports the top-N ranked
//! [`TelemetryReport`].
//!
//! Built entirely on `std::net` plus the vendored `crossbeam` shim —
//! no external service dependencies.
//!
//! Module map:
//!
//! * [`wire`] — the `hang-doctor/telemetry/v1` frame protocol:
//!   length-prefixed JSON frames, typed [`FrameError`]s, request and
//!   response messages;
//! * [`fingerprint`] — FNV-1a content fingerprints (idempotent-ingest
//!   keys) and `(app, device)` shard routing;
//! * [`store`] — the idempotent [`AggregationStore`] built on the
//!   report semilattice join;
//! * [`server`] — acceptor → bounded shard queues → worker pool, with
//!   explicit queue-full NACK backpressure and ACK-after-apply;
//! * [`client`] — the retrying [`Uploader`] with deterministic
//!   exponential backoff and `hd-faults` transport-fault injection;
//! * [`fleet`] — loopback fleet mode and the networked-vs-in-process
//!   byte-identity differential;
//! * [`bench`] — the loopback load benchmark behind
//!   `BENCH_telemetry.json`.
//!
//! ## End-to-end invariant
//!
//! For any fleet spec, uploading every job's report through the real
//! TCP path and querying the server yields a [`TelemetryReport`] that
//! is **byte-identical** to projecting the in-process
//! [`FleetReport`](hd_fleet::FleetReport) merge — even under chaos
//! mode, because ingest is idempotent (content-fingerprint dedup), the
//! merge is a semilattice join (order-independent), and serialization
//! is canonical (sorted maps, declaration-order fields).

pub mod bench;
pub mod client;
pub mod fingerprint;
pub mod fleet;
pub mod report;
pub mod server;
pub mod store;
pub mod wire;

pub use bench::{run_telemetry_bench, BenchSpec, TelemetryBench, BENCH_SCHEMA};
pub use client::{UploadError, UploadReceipt, Uploader, UploaderConfig};
pub use fingerprint::{batch_fingerprint, fnv1a, shard_for};
pub use fleet::{run_fleet_telemetry, TelemetryFleetOutcome};
pub use report::{HangGroup, TelemetryReport};
pub use server::{ServerConfig, ServerStats, TelemetryServer};
pub use store::{AggregationStore, IngestOutcome, IngestStats};
pub use wire::{
    decode_frame, encode_frame, read_frame, write_frame, FrameError, Request, Response,
    TelemetryItem, UploadBatch, MAGIC, MAX_FRAME, SCHEMA,
};
