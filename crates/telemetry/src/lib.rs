//! # hd-telemetry — networked hang-report ingestion and aggregation
//!
//! Hang Doctor's runtime detectors produce per-device
//! [`HangBugReport`](hangdoctor::HangBugReport)s; the paper's workflow
//! has developers triage them fleet-wide. This crate is that backend:
//! a TCP ingestion cluster, a device-side uploader, and a cross-device
//! aggregation store that clusters reports into hang groups keyed
//! `(app, action, root-cause API)` and exports the top-N ranked
//! [`TelemetryReport`].
//!
//! Built entirely on `std::net` plus the vendored `crossbeam` shim —
//! no external service dependencies.
//!
//! Module map:
//!
//! * [`wire`] — the `hang-doctor/telemetry/v2` frame protocol:
//!   length-prefixed JSON frames, typed [`FrameError`]s, explicit
//!   version negotiation (v1 frames still ingest byte-identically);
//! * [`error`] — the one typed [`TelemetryError`] every public API
//!   returns;
//! * [`fingerprint`] — FNV-1a content fingerprints (idempotent-ingest
//!   keys), `(app, device)` shard routing, and the cluster routing
//!   table generalization [`node_for`];
//! * [`store`] — the idempotent [`AggregationStore`] built on the
//!   report semilattice join, with canonical [`StoreSnapshot`]s and the
//!   CRDT fold [`AggregationStore::absorb`];
//! * [`wal`] — per-shard append-only write-ahead logs (CRC-framed
//!   canonical JSON) plus compacted snapshots; kill-and-restart replays
//!   to the identical aggregate;
//! * [`server`] — builder-validated server: acceptor → nonblocking
//!   multiplexed I/O workers (batch frame decode) → bounded shard
//!   queues → WAL-appending shard workers, with queue-full NACK
//!   backpressure and ACK-after-apply;
//! * [`client`] — the retrying [`Uploader`] with deterministic
//!   exponential backoff and `hd-faults` transport-fault injection,
//!   the windowed [`PipelinedUploader`] throughput path, and the
//!   idempotency-hardened [`ControlClient`] for the
//!   `hang-doctor/control/v1` dialect (live probes, diagnosis toggles,
//!   canaried threshold rollout — see `hd-control`);
//! * [`cluster`] — N-node partitioning, the stateless coordinator fold,
//!   and the deterministic kill-and-restart differential;
//! * [`fleet`] — loopback fleet mode and the networked-vs-in-process
//!   byte-identity differential;
//! * [`bench`] — the pipelined loopback load benchmark behind
//!   `BENCH_telemetry.json`.
//!
//! ## End-to-end invariant
//!
//! For any fleet spec, uploading every job's report through the real
//! TCP path — one node or a cluster of them, with or without a crash
//! and WAL-replay restart in the middle — and folding the aggregation
//! yields a [`TelemetryReport`] that is **byte-identical** to the
//! in-process merge. Ingest is idempotent (content-fingerprint dedup),
//! the merge is a semilattice join (order-independent, partition-
//! independent), and serialization is canonical (sorted maps,
//! declaration-order fields).

pub mod bench;
pub mod client;
pub mod cluster;
pub mod error;
pub mod fingerprint;
pub mod fleet;
pub mod report;
pub mod server;
pub mod store;
pub mod wal;
pub mod wire;

pub use bench::{run_telemetry_bench, BenchSpec, TelemetryBench, BENCH_SCHEMA};
pub use client::{ControlClient, PipelinedUploader, UploadReceipt, Uploader, UploaderConfig};
pub use cluster::{run_cluster_telemetry, Cluster, ClusterConfig, ClusterRunOutcome};
pub use error::TelemetryError;
pub use fingerprint::{batch_fingerprint, fnv1a, node_for, shard_for};
pub use fleet::{run_fleet_telemetry, TelemetryFleetOutcome};
pub use report::{HangGroup, TelemetryReport};
pub use server::{ServerConfig, ServerStats, TelemetryServer, TelemetryServerBuilder};
pub use store::{AggregationStore, IngestOutcome, IngestStats, StoreSnapshot, SNAPSHOT_SCHEMA};
pub use wal::{Wal, WalHeader, WalRecord, WalReplay, WAL_MAGIC, WAL_SCHEMA};
pub use wire::{
    decode_frame, drain_frames, encode_frame, encode_frame_in, read_frame, write_frame, FrameError,
    Request, Response, TelemetryItem, UploadBatch, WireVersion, MAGIC, MAX_FRAME, SCHEMA,
    SCHEMA_V1, SUPPORTED_SCHEMAS,
};
