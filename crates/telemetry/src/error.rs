//! The unified error surface of the telemetry crate.
//!
//! PR 5 grew the public API with mixed return types: `io::Result` on
//! the server constructor, [`FrameError`] on the wire helpers, and a
//! separate `UploadError` on the client. [`TelemetryError`] replaces
//! that mix with one typed enum covering every failure the public
//! surface can report — frame decode, transport I/O, queue-full
//! backpressure, schema drift, WAL corruption, invalid configuration,
//! and retry exhaustion. Every conversion is non-panicking: the
//! `From` impls below mean `?` works across the whole crate without
//! `map_err` noise, and no path stringifies an error before the caller
//! has had the chance to match on it.

use std::fmt;
use std::io;

use crate::wire::FrameError;

/// Every failure the telemetry public surface can report.
#[derive(Clone, Debug, PartialEq)]
pub enum TelemetryError {
    /// A wire frame failed to decode (bad magic, truncation, oversize,
    /// malformed JSON).
    Frame(FrameError),
    /// Transport or file I/O failed. Carries the rendered
    /// `io::Error` so the variant stays `Clone`/`PartialEq`.
    Io(String),
    /// The server shed the request under queue-full backpressure; the
    /// operation was **not** applied and may be retried after the hint.
    Nack {
        /// Server-suggested backoff, ms.
        retry_after_ms: u64,
    },
    /// A frame or stored artifact carried a schema tag this build does
    /// not speak.
    SchemaDrift(String),
    /// A write-ahead-log record failed its integrity check.
    WalCorrupt {
        /// Byte offset of the corrupt record within the WAL file.
        offset: u64,
        /// What the check found.
        reason: String,
    },
    /// A builder rejected an invalid configuration value.
    Config {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// The peer answered with a message the protocol does not allow at
    /// this point.
    Protocol(String),
    /// Retries were exhausted; the last underlying error is attached.
    Exhausted(String),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Frame(e) => write!(f, "frame error: {e}"),
            TelemetryError::Io(e) => write!(f, "i/o error: {e}"),
            TelemetryError::Nack { retry_after_ms } => {
                write!(f, "server NACK (retry after {retry_after_ms} ms)")
            }
            TelemetryError::SchemaDrift(s) => write!(f, "unsupported schema tag `{s}`"),
            TelemetryError::WalCorrupt { offset, reason } => {
                write!(f, "WAL corrupt at byte {offset}: {reason}")
            }
            TelemetryError::Config { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            TelemetryError::Protocol(e) => write!(f, "protocol error: {e}"),
            TelemetryError::Exhausted(e) => write!(f, "retries exhausted: {e}"),
        }
    }
}

impl std::error::Error for TelemetryError {}

impl From<FrameError> for TelemetryError {
    fn from(e: FrameError) -> TelemetryError {
        match e {
            // Schema mismatches surface as drift so callers can match
            // on the condition without digging into the frame layer.
            FrameError::Schema(tag) => TelemetryError::SchemaDrift(tag),
            FrameError::Io(io) => TelemetryError::Io(io),
            other => TelemetryError::Frame(other),
        }
    }
}

impl From<io::Error> for TelemetryError {
    fn from(e: io::Error) -> TelemetryError {
        TelemetryError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_schema_errors_become_schema_drift() {
        let e: TelemetryError = FrameError::Schema("hang-doctor/telemetry/v9".to_string()).into();
        assert_eq!(
            e,
            TelemetryError::SchemaDrift("hang-doctor/telemetry/v9".to_string())
        );
    }

    #[test]
    fn frame_io_errors_collapse_into_io() {
        let e: TelemetryError = FrameError::Io("broken pipe".to_string()).into();
        assert!(matches!(e, TelemetryError::Io(_)));
    }

    #[test]
    fn other_frame_errors_stay_frame() {
        let e: TelemetryError = FrameError::BadMagic(*b"XXXX").into();
        assert!(matches!(e, TelemetryError::Frame(FrameError::BadMagic(_))));
    }

    #[test]
    fn io_errors_convert_without_panicking() {
        let e: TelemetryError = io::Error::new(io::ErrorKind::ConnectionRefused, "nope").into();
        assert!(matches!(e, TelemetryError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }
}
