//! Cross-device aggregation output: ranked hang groups.
//!
//! A *hang group* is the paper's unit of triage — every soft hang the
//! fleet attributed to the same `(app, action, root-cause API)` triple,
//! with evidence merged across devices. [`TelemetryReport`] is the
//! query/export answer: the top-N groups ranked by occurrence
//! percentage, fleet-wide.
//!
//! The report can be built two ways, and the telemetry differential
//! test holds them byte-identical:
//!
//! * [`TelemetryReport::build`] — from the networked
//!   [`AggregationStore`](crate::store::AggregationStore)'s per-app
//!   merged reports;
//! * [`TelemetryReport::from_fleet`] — projected straight from an
//!   in-process [`FleetReport`] merge.
//!
//! Both reduce to [`HangBugReport::entries`] on per-app semilattice
//! joins, and the join is order-independent, so upload order, shard
//! assignment, and duplicate deliveries cannot change a byte of the
//! output.

use hangdoctor::{HangBugReport, ReportEntry, RootKind};
use hd_fleet::FleetReport;
use serde::{Deserialize, Serialize};

use crate::wire::SCHEMA;

/// One cross-device hang group: all hangs with the same
/// `(app, action, root-cause symbol)` key, evidence merged fleet-wide.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HangGroup {
    /// App the group belongs to.
    pub app: String,
    /// Action the bug manifests in.
    pub action: String,
    /// Root-cause symbol (the API or self-developed method at fault).
    pub symbol: String,
    /// Source location of the culprit.
    pub file: String,
    /// Line number.
    pub line: u32,
    /// Root-cause classification.
    pub kind: RootKind,
    /// Distinct devices that reported the bug.
    pub devices: usize,
    /// Soft hangs attributed to the group.
    pub hangs: u64,
    /// Executions of the affected action observed fleet-wide.
    pub action_executions: u64,
    /// Mean hang duration, ns.
    pub mean_hang_ns: u64,
    /// Ranking key: percentage of the action's executions that hung.
    pub occurrence_pct: f64,
}

impl HangGroup {
    fn from_entry(app: &str, e: ReportEntry) -> HangGroup {
        let occurrence_pct = e.occurrence_pct();
        HangGroup {
            app: app.to_string(),
            action: e.action,
            symbol: e.symbol,
            file: e.file,
            line: e.line,
            kind: e.kind,
            devices: e.devices,
            hangs: e.hangs,
            action_executions: e.action_executions,
            mean_hang_ns: e.mean_hang_ns,
            occurrence_pct,
        }
    }
}

/// The aggregation backend's query/export answer: top-N hang groups
/// ranked fleet-wide, plus coverage counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Protocol/schema tag (`hang-doctor/telemetry/v2`).
    pub schema: String,
    /// The N this report was truncated to.
    pub top_n: usize,
    /// Apps that contributed reports.
    pub apps: usize,
    /// Distinct devices that contributed reports.
    pub devices: usize,
    /// The ranked groups, best-first, at most `top_n`.
    pub groups: Vec<HangGroup>,
}

impl TelemetryReport {
    /// Builds the ranked report from per-app merged hang bug reports.
    ///
    /// `per_app` must carry each app at most once (the aggregation
    /// store's per-app map guarantees that); iteration order does not
    /// matter — the global ranking re-sorts.
    pub fn build<'a, I>(per_app: I, devices: usize, top_n: usize) -> TelemetryReport
    where
        I: IntoIterator<Item = (&'a str, &'a HangBugReport)>,
    {
        let mut apps = 0usize;
        let mut groups: Vec<HangGroup> = Vec::new();
        for (app, report) in per_app {
            apps += 1;
            groups.extend(
                report
                    .entries()
                    .into_iter()
                    .map(|e| HangGroup::from_entry(app, e)),
            );
        }
        // Fleet-wide ranking: occurrence percentage first (the paper's
        // Figure 2(b) order), then a total tiebreak so the ranking is
        // unambiguous for any input.
        groups.sort_by(|a, b| {
            b.occurrence_pct
                .partial_cmp(&a.occurrence_pct)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.app.cmp(&b.app))
                .then_with(|| a.action.cmp(&b.action))
                .then_with(|| a.symbol.cmp(&b.symbol))
        });
        groups.truncate(top_n);
        TelemetryReport {
            schema: SCHEMA.to_string(),
            top_n,
            apps,
            devices,
            groups,
        }
    }

    /// Projects the report straight from an in-process fleet merge —
    /// the reference the networked path is differentially tested
    /// against. One job = one device, so `merged.jobs` is the distinct
    /// device count.
    pub fn from_fleet(fleet: &FleetReport, top_n: usize) -> TelemetryReport {
        TelemetryReport::build(
            fleet
                .merged
                .apps
                .iter()
                .map(|a| (a.app.as_str(), &a.report)),
            fleet.merged.jobs,
            top_n,
        )
    }

    /// Canonical compact JSON — the byte string the differential test
    /// compares.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Renders a developer-facing text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Telemetry Report — {} apps, {} devices, top {} hang groups\n",
            self.apps, self.devices, self.top_n
        );
        out.push_str(&format!(
            "{:<4} {:<14} {:<45} {:>7} {:>7} {:>9}  {}\n",
            "#", "app", "root cause", "devices", "occur%", "mean(ms)", "action"
        ));
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str(&format!(
                "{:<4} {:<14} {:<45} {:>7} {:>6.1}% {:>9.1}  {}\n",
                i + 1,
                g.app,
                format!("{} ({}:{})", g.symbol, g.file, g.line),
                g.devices,
                g.occurrence_pct,
                g.mean_hang_ns as f64 / 1e6,
                g.action,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hangdoctor::RootCause;
    use hd_simrt::ActionUid;

    fn root(symbol: &str) -> RootCause {
        RootCause {
            symbol: symbol.to_string(),
            file: "App.java".to_string(),
            line: 42,
            occurrence_factor: 1.0,
            kind: RootKind::BlockingApi,
        }
    }

    fn report(app: &str, device: u32, hangs: u64, execs: u64) -> HangBugReport {
        let mut r = HangBugReport::new(app);
        let uid = ActionUid(7);
        for _ in 0..execs {
            r.note_execution(device, uid, "onClick");
        }
        for _ in 0..hangs {
            r.record_bug(device, uid, &root("java.io.File.read"), 120_000_000);
        }
        r
    }

    #[test]
    fn ranking_is_by_occurrence_then_lexicographic() {
        let hot = report("hot-app", 1, 8, 10); // 80 %
        let cold = report("cold-app", 2, 1, 10); // 10 %
        let t = TelemetryReport::build([("cold-app", &cold), ("hot-app", &hot)], 2, 10);
        assert_eq!(t.schema, SCHEMA);
        assert_eq!(t.apps, 2);
        assert_eq!(t.devices, 2);
        assert_eq!(t.groups.len(), 2);
        assert_eq!(t.groups[0].app, "hot-app");
        assert!(t.groups[0].occurrence_pct > t.groups[1].occurrence_pct);
    }

    #[test]
    fn top_n_truncates() {
        let a = report("a", 1, 2, 10);
        let b = report("b", 2, 3, 10);
        let t = TelemetryReport::build([("a", &a), ("b", &b)], 2, 1);
        assert_eq!(t.groups.len(), 1);
        assert_eq!(t.top_n, 1);
        assert_eq!(t.apps, 2);
    }

    #[test]
    fn build_is_iteration_order_independent() {
        let a = report("a", 1, 2, 10);
        let b = report("b", 2, 3, 10);
        let fwd = TelemetryReport::build([("a", &a), ("b", &b)], 2, 10);
        let rev = TelemetryReport::build([("b", &b), ("a", &a)], 2, 10);
        assert_eq!(fwd.to_json(), rev.to_json());
    }
}
