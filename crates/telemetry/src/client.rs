//! The device-side uploader.
//!
//! Spools [`UploadBatch`]es to a telemetry server over TCP, surviving
//! the transport faults `hd-faults` can inject (dropped connections,
//! delayed deliveries, duplicated frames) and the server's queue-full
//! NACKs. Delivery is **at-least-once**; the server's idempotent ingest
//! turns that into exactly-once state.
//!
//! Two clients live here. [`Uploader`] is the synchronous,
//! fault-injectable device path: one batch in flight, deterministic
//! retry/backoff, a full fault tally. [`PipelinedUploader`] is the lean
//! throughput path the ingest benchmark drives: it keeps a window of
//! batches in flight on one connection and reads ACKs in request order
//! (the server guarantees per-connection FIFO responses), which is what
//! pushes a single connection past the syscall-per-batch wall.
//!
//! Determinism contract (what the chaos differential leans on): every
//! fault decision for a batch is drawn from the device's
//! [`NetFaultPlan`] *before* the first send attempt, and the
//! retry-backoff jitter draws from a separate domain-forked RNG stream.
//! NACK timing — which depends on server load — can therefore never
//! perturb the fault schedule, so the injected-fault tally for a given
//! `(root_seed, device)` is a pure function of the batch count.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use hd_faults::{NetFaultConfig, NetFaultPlan, NetFaultTally};
use hd_simrt::SimRng;

use hangdoctor::ActionState;
use hd_control::{
    ControlRequest, ControlResponse, Directives, RolloutSpec, RolloutStage, RolloutStatusInfo,
    StackDump, SyncReport, CONTROL_SCHEMA,
};
use hd_faults::{CtrlFaultConfig, CtrlFaultPlan, CtrlFaultTally};

use crate::error::TelemetryError;
use crate::report::TelemetryReport;
use crate::store::StoreSnapshot;
use crate::wire::{
    encode_frame, encode_frame_in, read_frame, write_frame, FrameError, Request, Response,
    UploadBatch, WireVersion, SCHEMA, SCHEMA_V1, SUPPORTED_SCHEMAS,
};

/// Uploader tuning knobs.
#[derive(Clone, Debug)]
pub struct UploaderConfig {
    /// Attempts per batch before giving up (first try included).
    pub max_attempts: u32,
    /// Base backoff unit, ms; attempt `k` waits about `base * 2^k`.
    pub base_backoff_ms: u64,
    /// Network fault injection (chaos mode); default injects nothing.
    pub net_faults: NetFaultConfig,
}

impl Default for UploaderConfig {
    fn default() -> UploaderConfig {
        UploaderConfig {
            max_attempts: 12,
            base_backoff_ms: 1,
            net_faults: NetFaultConfig::none(),
        }
    }
}

/// Receipt for one delivered batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UploadReceipt {
    /// The server-computed content fingerprint.
    pub fingerprint: u64,
    /// Whether the server absorbed the batch as a duplicate.
    pub duplicate: bool,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// A device-side uploader bound to one server address.
pub struct Uploader {
    addr: SocketAddr,
    cfg: UploaderConfig,
    conn: Option<TcpStream>,
    faults: NetFaultPlan,
    backoff_rng: SimRng,
}

impl Uploader {
    /// Creates the uploader for device `device` under `root_seed`. The
    /// fault plan and backoff jitter derive deterministically from the
    /// pair, domain-separated from each other and from the simulation's
    /// own fault stream.
    pub fn new(addr: SocketAddr, device: u64, root_seed: u64, cfg: UploaderConfig) -> Uploader {
        let faults = NetFaultPlan::for_device(cfg.net_faults, root_seed, device);
        // A distinct stream for backoff jitter: retries consume from it
        // at NACK-dependent times, so it must not share state with the
        // fault schedule.
        let backoff_rng = SimRng::seed_from_u64(hd_faults::net_fault_seed(
            root_seed ^ 0xBACC_0FF5_EED0_15EA,
            device,
        ));
        Uploader {
            addr,
            cfg,
            conn: None,
            faults,
            backoff_rng,
        }
    }

    /// A fault-free uploader (production path).
    pub fn plain(addr: SocketAddr) -> Uploader {
        Uploader::new(addr, 0, 0, UploaderConfig::default())
    }

    /// The injected-fault and recovery tally so far.
    pub fn tally(&self) -> NetFaultTally {
        self.faults.tally()
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            self.conn = Some(TcpStream::connect(self.addr)?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn backoff(&mut self, attempt: u32, server_hint_ms: Option<u64>) {
        let base = self.cfg.base_backoff_ms.max(1);
        let exp = base.saturating_mul(1u64 << attempt.min(10));
        let jitter = self.backoff_rng.uniform_u64(0, base);
        let wait = server_hint_ms.unwrap_or(0).max(exp) + jitter;
        thread::sleep(Duration::from_millis(wait));
    }

    /// One request/response round trip on the current connection.
    fn round_trip(&mut self, frame: &[u8]) -> Result<Response, FrameError> {
        let stream = self.connect().map_err(|e| FrameError::Io(e.to_string()))?;
        if let Err(e) = write_frame(stream, frame) {
            self.conn = None;
            return Err(FrameError::Io(e.to_string()));
        }
        match read_frame(stream) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Explicit version negotiation: tells the server every *telemetry*
    /// dialect this build speaks and returns the newest common one.
    /// Optional — a connection that skips the handshake is answered in
    /// whatever dialect its requests arrive in. The uploader never
    /// offers the control dialect; that is [`ControlClient`]'s opening
    /// move.
    pub fn negotiate(&mut self) -> Result<WireVersion, TelemetryError> {
        let hello = Request::Hello {
            supported: vec![SCHEMA.to_string(), SCHEMA_V1.to_string()],
        };
        match self.round_trip(&encode_frame(&hello))? {
            Response::Welcome { schema } => {
                WireVersion::from_tag(&schema).ok_or(TelemetryError::SchemaDrift(schema))
            }
            Response::Error(e) => Err(TelemetryError::Protocol(e)),
            other => Err(TelemetryError::Protocol(format!(
                "hello answered with {other:?}"
            ))),
        }
    }

    /// Delivers one batch, retrying NACKs and transport errors with
    /// deterministic exponential backoff. Injects this batch's
    /// scheduled faults (drawn up front) along the way.
    pub fn upload(&mut self, batch: &UploadBatch) -> Result<UploadReceipt, TelemetryError> {
        // Draw the whole fault schedule for this batch before touching
        // the network, so retries cannot perturb it.
        let injected = self.faults.next_batch();

        if injected.drop_connection {
            // The connection "dies" before the batch goes out; the next
            // attempt transparently reconnects.
            self.conn = None;
        }
        if let Some(delay_ns) = injected.delay_ns {
            thread::sleep(Duration::from_nanos(delay_ns));
        }

        let frame = encode_frame(&Request::Upload(batch.clone()));
        let mut last_err = String::new();
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                self.faults.tally.upload_retries += 1;
            }
            match self.round_trip(&frame) {
                Ok(Response::Ack {
                    fingerprint,
                    duplicate,
                }) => {
                    if duplicate {
                        self.faults.tally.duplicates_absorbed += 1;
                    }
                    if injected.duplicate {
                        // Deliver the frame a second time to exercise
                        // idempotent ingest; keep the protocol in sync
                        // by reading (and checking) the response.
                        match self.round_trip(&frame) {
                            Ok(Response::Ack {
                                duplicate: true, ..
                            }) => self.faults.tally.duplicates_absorbed += 1,
                            Ok(Response::Nack { .. }) | Err(_) => {
                                // The duplicate was shed (queue full or
                                // transport loss) — acceptable: the
                                // original delivery already ACKed.
                            }
                            Ok(other) => {
                                return Err(TelemetryError::Protocol(format!(
                                    "duplicate delivery answered with {other:?}"
                                )))
                            }
                        }
                    }
                    return Ok(UploadReceipt {
                        fingerprint,
                        duplicate,
                        attempts: attempt + 1,
                    });
                }
                Ok(Response::Nack { retry_after_ms }) => {
                    self.faults.tally.nacks_received += 1;
                    last_err = "queue-full NACK".to_string();
                    self.backoff(attempt, Some(retry_after_ms));
                }
                Ok(Response::Error(e)) => return Err(TelemetryError::Protocol(e)),
                Ok(other) => {
                    return Err(TelemetryError::Protocol(format!(
                        "upload answered with {other:?}"
                    )))
                }
                Err(e) => {
                    last_err = e.to_string();
                    self.backoff(attempt, None);
                }
            }
        }
        Err(TelemetryError::Exhausted(last_err))
    }

    /// Queries the server's current top-N aggregation.
    pub fn query(&mut self, top_n: usize) -> Result<TelemetryReport, TelemetryError> {
        let frame = encode_frame(&Request::Query { top_n });
        match self.round_trip(&frame) {
            Ok(Response::Report(report)) => Ok(report),
            Ok(other) => Err(TelemetryError::Protocol(format!(
                "query answered with {other:?}"
            ))),
            Err(e) => Err(TelemetryError::Exhausted(e.to_string())),
        }
    }

    /// Exports the node's raw aggregation state (the semilattice
    /// elements, not the lossy top-N projection) — what the cluster
    /// coordinator folds across nodes.
    pub fn export(&mut self) -> Result<StoreSnapshot, TelemetryError> {
        let frame = encode_frame(&Request::Export);
        match self.round_trip(&frame) {
            Ok(Response::State(snapshot)) => Ok(snapshot),
            Ok(other) => Err(TelemetryError::Protocol(format!(
                "export answered with {other:?}"
            ))),
            Err(e) => Err(TelemetryError::Exhausted(e.to_string())),
        }
    }

    /// Asks the server to shut down after this connection.
    pub fn shutdown(&mut self) -> Result<(), TelemetryError> {
        let frame = encode_frame(&Request::Shutdown);
        match self.round_trip(&frame) {
            Ok(Response::Bye) => {
                self.conn = None;
                Ok(())
            }
            Ok(other) => Err(TelemetryError::Protocol(format!(
                "shutdown answered with {other:?}"
            ))),
            Err(e) => Err(TelemetryError::Exhausted(e.to_string())),
        }
    }
}

/// The lean throughput path: keeps many batches in flight on one
/// connection and reads ACKs in request order. No fault injection, no
/// internal retries — a NACK surfaces as [`TelemetryError::Nack`] with
/// the request-order index so the caller can re-send exactly that batch.
pub struct PipelinedUploader {
    stream: TcpStream,
    inflight: usize,
}

impl PipelinedUploader {
    /// Connects to the server (Nagle off — frames should leave now).
    pub fn connect(addr: SocketAddr) -> Result<PipelinedUploader, TelemetryError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedUploader {
            stream,
            inflight: 0,
        })
    }

    /// Batches currently awaiting an ACK.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Fires one batch without waiting for its response.
    pub fn send(&mut self, batch: &UploadBatch) -> Result<(), TelemetryError> {
        let frame = PipelinedUploader::encode_upload(batch);
        self.send_encoded(&frame)
    }

    /// Encodes an upload once, for [`PipelinedUploader::send_encoded`].
    /// A spooling device (or a benchmark harness) serializes each batch
    /// a single time and can re-send the identical bytes on retry.
    pub fn encode_upload(batch: &UploadBatch) -> Vec<u8> {
        encode_frame(&Request::Upload(batch.clone()))
    }

    /// Fires one pre-encoded upload frame without waiting for its
    /// response.
    pub fn send_encoded(&mut self, frame: &[u8]) -> Result<(), TelemetryError> {
        write_frame(&mut self.stream, frame)?;
        self.inflight += 1;
        Ok(())
    }

    /// Blocks for the next response in request order. A queue-full shed
    /// is returned as [`TelemetryError::Nack`]; the caller owns the
    /// in-flight bookkeeping, so it knows which batch that was.
    pub fn recv(&mut self) -> Result<UploadReceipt, TelemetryError> {
        if self.inflight == 0 {
            return Err(TelemetryError::Protocol(
                "recv with nothing in flight".to_string(),
            ));
        }
        self.inflight -= 1;
        match read_frame::<Response>(&mut self.stream)? {
            Response::Ack {
                fingerprint,
                duplicate,
            } => Ok(UploadReceipt {
                fingerprint,
                duplicate,
                attempts: 1,
            }),
            Response::Nack { retry_after_ms } => Err(TelemetryError::Nack { retry_after_ms }),
            Response::Error(e) => Err(TelemetryError::Protocol(e)),
            other => Err(TelemetryError::Protocol(format!(
                "upload answered with {other:?}"
            ))),
        }
    }
}

/// The control-plane client: drives `hang-doctor/control/v1` exchanges
/// over the same framed transport the uploader uses. Both the device
/// agent loop (periodic syncs) and the operator CLI (probes, threshold
/// pushes) speak through it.
///
/// Fault tolerance leans entirely on message idempotency: every control
/// request is safe to re-send (replace-semantics syncs, target-stage
/// advances, full-desired-state responses), so a lost frame is simply
/// retried and a duplicated frame's second response is read and
/// absorbed. The injected schedule comes from a deterministic
/// [`CtrlFaultPlan`], domain-separated from every other fault stream.
pub struct ControlClient {
    addr: SocketAddr,
    conn: Option<TcpStream>,
    faults: CtrlFaultPlan,
    max_attempts: u32,
}

impl ControlClient {
    /// A fault-free control client (production path).
    pub fn connect(addr: SocketAddr) -> ControlClient {
        ControlClient {
            addr,
            conn: None,
            faults: CtrlFaultPlan::disabled(),
            max_attempts: 12,
        }
    }

    /// A control client whose frames suffer the deterministic fault
    /// schedule derived from `(root_seed, device)`.
    pub fn with_faults(
        addr: SocketAddr,
        cfg: CtrlFaultConfig,
        root_seed: u64,
        device: u64,
    ) -> ControlClient {
        ControlClient {
            addr,
            conn: None,
            faults: CtrlFaultPlan::for_device(cfg, root_seed, device),
            max_attempts: 12,
        }
    }

    /// The injected-fault and recovery tally so far.
    pub fn tally(&self) -> CtrlFaultTally {
        self.faults.tally()
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            self.conn = Some(TcpStream::connect(self.addr)?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn round_trip(&mut self, frame: &[u8]) -> Result<Response, FrameError> {
        let stream = self.stream().map_err(|e| FrameError::Io(e.to_string()))?;
        if let Err(e) = write_frame(stream, frame) {
            self.conn = None;
            return Err(FrameError::Io(e.to_string()));
        }
        match read_frame(stream) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Opens with a Hello offering the control dialect first; the server
    /// must answer in it.
    pub fn negotiate(&mut self) -> Result<WireVersion, TelemetryError> {
        let hello = Request::Hello {
            supported: SUPPORTED_SCHEMAS.iter().map(|s| s.to_string()).collect(),
        };
        let frame = encode_frame_in(WireVersion::Control, &hello);
        match self.round_trip(&frame)? {
            Response::Welcome { schema } if schema == CONTROL_SCHEMA => Ok(WireVersion::Control),
            Response::Welcome { schema } => Err(TelemetryError::SchemaDrift(schema)),
            Response::Error(e) => Err(TelemetryError::Protocol(e)),
            other => Err(TelemetryError::Protocol(format!(
                "hello answered with {other:?}"
            ))),
        }
    }

    /// One control round trip, surviving this frame's injected faults:
    /// a lost frame reconnects and re-sends, a delayed frame waits, a
    /// duplicated frame goes out twice and the extra response is read
    /// and absorbed. Safe precisely because every control message is
    /// idempotent.
    pub fn request(&mut self, req: &ControlRequest) -> Result<ControlResponse, TelemetryError> {
        let frame = encode_frame_in(WireVersion::Control, &Request::Control(req.clone()));
        // The whole fault schedule for this frame is drawn before the
        // first byte moves, so retry timing cannot perturb it.
        let injected = self.faults.next_frame();
        if injected.drop {
            // The frame dies in flight: the connection is gone and the
            // client must re-send.
            self.conn = None;
            self.faults.tally.resends += 1;
        }
        if let Some(delay_ns) = injected.delay_ns {
            thread::sleep(Duration::from_nanos(delay_ns));
        }
        let mut last_err = String::new();
        for _ in 0..self.max_attempts {
            match self.round_trip(&frame) {
                Ok(Response::Control(resp)) => {
                    if injected.duplicate {
                        // Deliver the frame a second time to exercise
                        // idempotency; read (and absorb) its response to
                        // keep the connection's request/response cadence.
                        if let Ok(Response::Control(_)) = self.round_trip(&frame) {
                            self.faults.tally.duplicates_absorbed += 1;
                        }
                    }
                    return Ok(resp);
                }
                Ok(Response::Error(e)) => return Err(TelemetryError::Protocol(e)),
                Ok(other) => {
                    return Err(TelemetryError::Protocol(format!(
                        "control request answered with {other:?}"
                    )))
                }
                Err(e) => {
                    last_err = e.to_string();
                    self.conn = None;
                }
            }
        }
        Err(TelemetryError::Exhausted(last_err))
    }

    /// Device path: reports live state, returns the server's directives.
    pub fn sync(&mut self, report: SyncReport) -> Result<Directives, TelemetryError> {
        match self.request(&ControlRequest::Sync(report))? {
            ControlResponse::Directives(d) => Ok(d),
            ControlResponse::Err(e) => Err(TelemetryError::Protocol(e)),
            other => Err(TelemetryError::Protocol(format!(
                "sync answered with {other:?}"
            ))),
        }
    }

    /// Operator probe: a synced device's live S-Checker state table.
    pub fn query_state(
        &mut self,
        device: u32,
    ) -> Result<Vec<(u64, ActionState, u32)>, TelemetryError> {
        match self.request(&ControlRequest::QueryState { device })? {
            ControlResponse::StateTable { states, .. } => Ok(states),
            ControlResponse::Err(e) => Err(TelemetryError::Protocol(e)),
            other => Err(TelemetryError::Protocol(format!(
                "state query answered with {other:?}"
            ))),
        }
    }

    /// Operator probe: a device's most recent on-demand stack dump.
    pub fn pull_stack(&mut self, device: u32) -> Result<Option<StackDump>, TelemetryError> {
        match self.request(&ControlRequest::PullStack { device })? {
            ControlResponse::Stack { stack, .. } => Ok(stack),
            ControlResponse::Err(e) => Err(TelemetryError::Protocol(e)),
            other => Err(TelemetryError::Protocol(format!(
                "stack pull answered with {other:?}"
            ))),
        }
    }

    /// Operator: enable/disable phase-2 diagnosis for one app.
    pub fn toggle_diagnosis(&mut self, app: &str, enabled: bool) -> Result<(), TelemetryError> {
        match self.request(&ControlRequest::ToggleDiagnosis {
            app: app.to_string(),
            enabled,
        })? {
            ControlResponse::Ok => Ok(()),
            ControlResponse::Err(e) => Err(TelemetryError::Protocol(e)),
            other => Err(TelemetryError::Protocol(format!(
                "toggle answered with {other:?}"
            ))),
        }
    }

    /// Operator: starts a canaried rollout of retrained thresholds.
    pub fn push_thresholds(
        &mut self,
        spec: RolloutSpec,
    ) -> Result<RolloutStatusInfo, TelemetryError> {
        self.rollout_response(&ControlRequest::PushThresholds(spec))
    }

    /// Operator: advances the rollout to `stage`.
    pub fn advance_rollout(
        &mut self,
        stage: RolloutStage,
    ) -> Result<RolloutStatusInfo, TelemetryError> {
        self.rollout_response(&ControlRequest::AdvanceRollout { stage })
    }

    /// Operator: the rollout's current status.
    pub fn rollout_status(&mut self) -> Result<RolloutStatusInfo, TelemetryError> {
        self.rollout_response(&ControlRequest::RolloutStatus)
    }

    fn rollout_response(
        &mut self,
        req: &ControlRequest,
    ) -> Result<RolloutStatusInfo, TelemetryError> {
        match self.request(req)? {
            ControlResponse::Rollout(status) => Ok(status),
            ControlResponse::Err(e) => Err(TelemetryError::Protocol(e)),
            other => Err(TelemetryError::Protocol(format!(
                "rollout request answered with {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down after this connection.
    pub fn shutdown(&mut self) -> Result<(), TelemetryError> {
        let frame = encode_frame_in(WireVersion::Control, &Request::Shutdown);
        match self.round_trip(&frame) {
            Ok(Response::Bye) => {
                self.conn = None;
                Ok(())
            }
            Ok(other) => Err(TelemetryError::Protocol(format!(
                "shutdown answered with {other:?}"
            ))),
            Err(e) => Err(TelemetryError::Exhausted(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::TelemetryServer;
    use crate::wire::TelemetryItem;
    use hangdoctor::HangBugReport;

    fn batch(device: u32, seq: u64) -> UploadBatch {
        UploadBatch {
            app: "app".to_string(),
            device,
            seq,
            items: vec![TelemetryItem::Report(HangBugReport::new("app"))],
        }
    }

    #[test]
    fn uploader_delivers_and_queries() {
        let server = TelemetryServer::builder().start().unwrap();
        let mut up = Uploader::plain(server.local_addr());
        assert_eq!(up.negotiate().unwrap(), WireVersion::V2);
        let receipt = up.upload(&batch(1, 0)).unwrap();
        assert!(!receipt.duplicate);
        assert_eq!(receipt.attempts, 1);
        // Retransmission of the same batch is absorbed.
        let again = up.upload(&batch(1, 0)).unwrap();
        assert!(again.duplicate);
        assert_eq!(again.fingerprint, receipt.fingerprint);

        let report = up.query(10).unwrap();
        assert_eq!(report.devices, 1);

        // Export returns the raw semilattice state.
        let snapshot = up.export().unwrap();
        assert_eq!(snapshot.devices.len(), 1);
        assert_eq!(snapshot.stats.batches_applied, 1);

        up.shutdown().unwrap();
        let stats = server.join();
        assert_eq!(stats.ingest.batches_applied, 1);
        assert_eq!(stats.ingest.duplicates_absorbed, 1);
    }

    #[test]
    fn injected_duplicates_are_absorbed_not_double_counted() {
        let server = TelemetryServer::builder().start().unwrap();
        let cfg = UploaderConfig {
            net_faults: NetFaultConfig::chaos(1.0), // every category fires
            ..Default::default()
        };
        let mut up = Uploader::new(server.local_addr(), 7, 42, cfg);

        for seq in 0..5 {
            up.upload(&batch(7, seq)).unwrap();
        }
        let tally = up.tally();
        assert_eq!(tally.frames_duplicated, 5);
        assert_eq!(tally.connections_dropped, 5);
        assert_eq!(tally.deliveries_delayed, 5);
        assert_eq!(tally.duplicates_absorbed, 5);

        let report = up.query(10).unwrap();
        assert_eq!(report.devices, 1);
        up.shutdown().unwrap();
        let stats = server.join();
        // 5 unique batches applied; 5 duplicate deliveries absorbed.
        assert_eq!(stats.ingest.batches_applied, 5);
        assert_eq!(stats.ingest.duplicates_absorbed, 5);
    }

    fn sync_report(device: u32) -> SyncReport {
        SyncReport {
            device,
            app: "app".to_string(),
            states: vec![(1, ActionState::Suspicious, 0)],
            stack: Some(StackDump {
                device,
                action: "act".to_string(),
                uid: 1,
                frames: vec!["frame".to_string()],
                response_ns: 150_000_000,
            }),
            health: Default::default(),
        }
    }

    #[test]
    fn control_client_probes_a_live_server() {
        let server = TelemetryServer::builder().start().unwrap();
        let mut ctl = ControlClient::connect(server.local_addr());
        assert_eq!(ctl.negotiate().unwrap(), WireVersion::Control);

        let directives = ctl.sync(sync_report(4)).unwrap();
        assert!(directives.diagnosis_enabled);
        assert_eq!(directives.thresholds, None);

        assert_eq!(
            ctl.query_state(4).unwrap(),
            vec![(1, ActionState::Suspicious, 0)]
        );
        let stack = ctl.pull_stack(4).unwrap().expect("stack present");
        assert_eq!(stack.action, "act");
        assert!(ctl.query_state(99).is_err(), "unknown device is typed");

        ctl.toggle_diagnosis("app", false).unwrap();
        let directives = ctl.sync(sync_report(4)).unwrap();
        assert!(!directives.diagnosis_enabled);

        // Uploads and control frames share one server.
        let mut up = Uploader::plain(server.local_addr());
        up.upload(&batch(1, 0)).unwrap();
        drop(up); // close the upload connection so join can drain

        ctl.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn control_client_survives_full_chaos() {
        use hangdoctor::SymptomThresholds;
        use hd_control::{device_bucket, RolloutStage};

        let server = TelemetryServer::builder().start().unwrap();
        let mut ctl =
            ControlClient::with_faults(server.local_addr(), CtrlFaultConfig::chaos(1.0), 42, 1);
        // Every frame is dropped once, delayed, and duplicated — the
        // outcome must match a fault-free exchange exactly.
        let spec = RolloutSpec {
            thresholds: SymptomThresholds {
                task_clock_diff: 5.0e7,
                ..SymptomThresholds::default()
            },
            baseline: SymptomThresholds::default(),
        };
        let in_cohort = (1..10_000u32)
            .find(|&d| device_bucket(d) < RolloutStage::Canary.cutoff())
            .unwrap();
        let status = ctl.push_thresholds(spec).unwrap();
        assert_eq!(status.stage, "canary");
        let d = ctl.sync(sync_report(in_cohort)).unwrap();
        assert_eq!(d.thresholds, Some(spec.thresholds));
        // Duplicate advances land on an idempotent target stage.
        let status = ctl.advance_rollout(RolloutStage::Expanded).unwrap();
        assert_eq!(status.stage, "expanded");
        let status = ctl.advance_rollout(RolloutStage::Expanded).unwrap();
        assert_eq!(status.stage, "expanded");

        let tally = ctl.tally();
        assert!(tally.frames_lost > 0, "{tally:?}");
        assert!(tally.resends >= tally.frames_lost, "{tally:?}");
        assert!(tally.duplicates_absorbed > 0, "{tally:?}");

        ctl.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn pipelined_uploader_windows_without_losing_order() {
        let server = TelemetryServer::builder().start().unwrap();
        let mut up = PipelinedUploader::connect(server.local_addr()).unwrap();
        let batches: Vec<UploadBatch> = (0..16).map(|seq| batch(3, seq)).collect();
        let fps: Vec<u64> = batches
            .iter()
            .map(crate::fingerprint::batch_fingerprint)
            .collect();
        for b in &batches {
            up.send(b).unwrap();
        }
        assert_eq!(up.inflight(), 16);
        for fp in fps {
            let receipt = up.recv().unwrap();
            assert_eq!(receipt.fingerprint, fp);
            assert!(!receipt.duplicate);
        }
        assert_eq!(up.inflight(), 0);
        drop(up);

        let mut ctl = Uploader::plain(server.local_addr());
        ctl.shutdown().unwrap();
        let stats = server.join();
        assert_eq!(stats.ingest.batches_applied, 16);
    }
}
