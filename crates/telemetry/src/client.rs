//! The device-side uploader.
//!
//! Spools [`UploadBatch`]es to a telemetry server over TCP, surviving
//! the transport faults `hd-faults` can inject (dropped connections,
//! delayed deliveries, duplicated frames) and the server's queue-full
//! NACKs. Delivery is **at-least-once**; the server's idempotent ingest
//! turns that into exactly-once state.
//!
//! Determinism contract (what the chaos differential leans on): every
//! fault decision for a batch is drawn from the device's
//! [`NetFaultPlan`] *before* the first send attempt, and the
//! retry-backoff jitter draws from a separate domain-forked RNG stream.
//! NACK timing — which depends on server load — can therefore never
//! perturb the fault schedule, so the injected-fault tally for a given
//! `(root_seed, device)` is a pure function of the batch count.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use hd_faults::{NetFaultConfig, NetFaultPlan, NetFaultTally};
use hd_simrt::SimRng;

use crate::report::TelemetryReport;
use crate::wire::{
    encode_frame, read_frame, write_frame, FrameError, Request, Response, UploadBatch,
};

/// Uploader tuning knobs.
#[derive(Clone, Debug)]
pub struct UploaderConfig {
    /// Attempts per batch before giving up (first try included).
    pub max_attempts: u32,
    /// Base backoff unit, ms; attempt `k` waits about `base * 2^k`.
    pub base_backoff_ms: u64,
    /// Network fault injection (chaos mode); default injects nothing.
    pub net_faults: NetFaultConfig,
}

impl Default for UploaderConfig {
    fn default() -> UploaderConfig {
        UploaderConfig {
            max_attempts: 12,
            base_backoff_ms: 1,
            net_faults: NetFaultConfig::none(),
        }
    }
}

/// Upload failure after retries were exhausted (or the server replied
/// with a protocol error).
#[derive(Clone, Debug, PartialEq)]
pub enum UploadError {
    /// All attempts failed; the last frame/transport error is attached.
    Exhausted(String),
    /// The server answered with an unexpected message.
    Protocol(String),
}

impl std::fmt::Display for UploadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UploadError::Exhausted(e) => write!(f, "upload retries exhausted: {e}"),
            UploadError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for UploadError {}

/// Receipt for one delivered batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UploadReceipt {
    /// The server-computed content fingerprint.
    pub fingerprint: u64,
    /// Whether the server absorbed the batch as a duplicate.
    pub duplicate: bool,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// A device-side uploader bound to one server address.
pub struct Uploader {
    addr: SocketAddr,
    cfg: UploaderConfig,
    conn: Option<TcpStream>,
    faults: NetFaultPlan,
    backoff_rng: SimRng,
}

impl Uploader {
    /// Creates the uploader for device `device` under `root_seed`. The
    /// fault plan and backoff jitter derive deterministically from the
    /// pair, domain-separated from each other and from the simulation's
    /// own fault stream.
    pub fn new(addr: SocketAddr, device: u64, root_seed: u64, cfg: UploaderConfig) -> Uploader {
        let faults = NetFaultPlan::for_device(cfg.net_faults, root_seed, device);
        // A distinct stream for backoff jitter: retries consume from it
        // at NACK-dependent times, so it must not share state with the
        // fault schedule.
        let backoff_rng = SimRng::seed_from_u64(hd_faults::net_fault_seed(
            root_seed ^ 0xBACC_0FF5_EED0_15EA,
            device,
        ));
        Uploader {
            addr,
            cfg,
            conn: None,
            faults,
            backoff_rng,
        }
    }

    /// A fault-free uploader (production path).
    pub fn plain(addr: SocketAddr) -> Uploader {
        Uploader::new(addr, 0, 0, UploaderConfig::default())
    }

    /// The injected-fault and recovery tally so far.
    pub fn tally(&self) -> NetFaultTally {
        self.faults.tally()
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            self.conn = Some(TcpStream::connect(self.addr)?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn backoff(&mut self, attempt: u32, server_hint_ms: Option<u64>) {
        let base = self.cfg.base_backoff_ms.max(1);
        let exp = base.saturating_mul(1u64 << attempt.min(10));
        let jitter = self.backoff_rng.uniform_u64(0, base);
        let wait = server_hint_ms.unwrap_or(0).max(exp) + jitter;
        thread::sleep(Duration::from_millis(wait));
    }

    /// One request/response round trip on the current connection.
    fn round_trip(&mut self, frame: &[u8]) -> Result<Response, FrameError> {
        let stream = self.connect().map_err(|e| FrameError::Io(e.to_string()))?;
        if let Err(e) = write_frame(stream, frame) {
            self.conn = None;
            return Err(FrameError::Io(e.to_string()));
        }
        match read_frame(stream) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Delivers one batch, retrying NACKs and transport errors with
    /// deterministic exponential backoff. Injects this batch's
    /// scheduled faults (drawn up front) along the way.
    pub fn upload(&mut self, batch: &UploadBatch) -> Result<UploadReceipt, UploadError> {
        // Draw the whole fault schedule for this batch before touching
        // the network, so retries cannot perturb it.
        let injected = self.faults.next_batch();

        if injected.drop_connection {
            // The connection "dies" before the batch goes out; the next
            // attempt transparently reconnects.
            self.conn = None;
        }
        if let Some(delay_ns) = injected.delay_ns {
            thread::sleep(Duration::from_nanos(delay_ns));
        }

        let frame = encode_frame(&Request::Upload(batch.clone()));
        let mut last_err = String::new();
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                self.faults.tally.upload_retries += 1;
            }
            match self.round_trip(&frame) {
                Ok(Response::Ack {
                    fingerprint,
                    duplicate,
                }) => {
                    if duplicate {
                        self.faults.tally.duplicates_absorbed += 1;
                    }
                    if injected.duplicate {
                        // Deliver the frame a second time to exercise
                        // idempotent ingest; keep the protocol in sync
                        // by reading (and checking) the response.
                        match self.round_trip(&frame) {
                            Ok(Response::Ack {
                                duplicate: true, ..
                            }) => self.faults.tally.duplicates_absorbed += 1,
                            Ok(Response::Nack { .. }) | Err(_) => {
                                // The duplicate was shed (queue full or
                                // transport loss) — acceptable: the
                                // original delivery already ACKed.
                            }
                            Ok(other) => {
                                return Err(UploadError::Protocol(format!(
                                    "duplicate delivery answered with {other:?}"
                                )))
                            }
                        }
                    }
                    return Ok(UploadReceipt {
                        fingerprint,
                        duplicate,
                        attempts: attempt + 1,
                    });
                }
                Ok(Response::Nack { retry_after_ms }) => {
                    self.faults.tally.nacks_received += 1;
                    last_err = "queue-full NACK".to_string();
                    self.backoff(attempt, Some(retry_after_ms));
                }
                Ok(Response::Error(e)) => return Err(UploadError::Protocol(e)),
                Ok(other) => {
                    return Err(UploadError::Protocol(format!(
                        "upload answered with {other:?}"
                    )))
                }
                Err(e) => {
                    last_err = e.to_string();
                    self.backoff(attempt, None);
                }
            }
        }
        Err(UploadError::Exhausted(last_err))
    }

    /// Queries the server's current top-N aggregation.
    pub fn query(&mut self, top_n: usize) -> Result<TelemetryReport, UploadError> {
        let frame = encode_frame(&Request::Query { top_n });
        match self.round_trip(&frame) {
            Ok(Response::Report(report)) => Ok(report),
            Ok(other) => Err(UploadError::Protocol(format!(
                "query answered with {other:?}"
            ))),
            Err(e) => Err(UploadError::Exhausted(e.to_string())),
        }
    }

    /// Asks the server to shut down after this connection.
    pub fn shutdown(&mut self) -> Result<(), UploadError> {
        let frame = encode_frame(&Request::Shutdown);
        match self.round_trip(&frame) {
            Ok(Response::Bye) => {
                self.conn = None;
                Ok(())
            }
            Ok(other) => Err(UploadError::Protocol(format!(
                "shutdown answered with {other:?}"
            ))),
            Err(e) => Err(UploadError::Exhausted(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, TelemetryServer};
    use crate::wire::TelemetryItem;
    use hangdoctor::HangBugReport;

    fn batch(device: u32, seq: u64) -> UploadBatch {
        UploadBatch {
            app: "app".to_string(),
            device,
            seq,
            items: vec![TelemetryItem::Report(HangBugReport::new("app"))],
        }
    }

    #[test]
    fn uploader_delivers_and_queries() {
        let server = TelemetryServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut up = Uploader::plain(server.local_addr());
        let receipt = up.upload(&batch(1, 0)).unwrap();
        assert!(!receipt.duplicate);
        assert_eq!(receipt.attempts, 1);
        // Retransmission of the same batch is absorbed.
        let again = up.upload(&batch(1, 0)).unwrap();
        assert!(again.duplicate);
        assert_eq!(again.fingerprint, receipt.fingerprint);

        let report = up.query(10).unwrap();
        assert_eq!(report.devices, 1);

        up.shutdown().unwrap();
        let stats = server.join();
        assert_eq!(stats.ingest.batches_applied, 1);
        assert_eq!(stats.ingest.duplicates_absorbed, 1);
    }

    #[test]
    fn injected_duplicates_are_absorbed_not_double_counted() {
        let server = TelemetryServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let cfg = UploaderConfig {
            net_faults: NetFaultConfig::chaos(1.0), // every category fires
            ..Default::default()
        };
        let mut up = Uploader::new(server.local_addr(), 7, 42, cfg);

        for seq in 0..5 {
            up.upload(&batch(7, seq)).unwrap();
        }
        let tally = up.tally();
        assert_eq!(tally.frames_duplicated, 5);
        assert_eq!(tally.connections_dropped, 5);
        assert_eq!(tally.deliveries_delayed, 5);
        assert_eq!(tally.duplicates_absorbed, 5);

        let report = up.query(10).unwrap();
        assert_eq!(report.devices, 1);
        up.shutdown().unwrap();
        let stats = server.join();
        // 5 unique batches applied; 5 duplicate deliveries absorbed.
        assert_eq!(stats.ingest.batches_applied, 5);
        assert_eq!(stats.ingest.duplicates_absorbed, 5);
    }
}
