//! Loopback fleet mode: route every fleet job's report through the
//! real uploader → TCP server → aggregation store path, then compare
//! against the in-process merge.
//!
//! This is the telemetry subsystem's end-to-end differential: the
//! networked [`TelemetryReport`] must be **byte-identical** to the
//! projection straight off the in-process [`FleetReport`] — including
//! under chaos mode with transport faults, whose duplicate deliveries
//! the idempotent ingest absorbs.
//!
//! Determinism of the chaos tally: each device uploads through its own
//! deterministic [`NetFaultPlan`](hd_faults::NetFaultPlan) (seeded by
//! `(root_seed, device)`), and the server queue is sized to at least
//! the upload thread count so backpressure NACKs — whose counts would
//! depend on scheduling — cannot occur in this mode. The merged
//! [`NetFaultTally`] is therefore a pure function of the spec.

use std::sync::Mutex;
use std::thread;

use hd_faults::{NetFaultConfig, NetFaultTally};
use hd_fleet::{run_fleet_with_reports, FleetReport, FleetSpec, JobReport};

use crate::client::{Uploader, UploaderConfig};
use crate::report::TelemetryReport;
use crate::server::{ServerConfig, ServerStats, TelemetryServer};
use crate::wire::{TelemetryItem, UploadBatch};

/// Everything one loopback telemetry fleet run produced.
#[derive(Clone, Debug)]
pub struct TelemetryFleetOutcome {
    /// The in-process fleet result, with `chaos.net` filled from the
    /// uploaders' merged tallies (chaos mode only).
    pub fleet: FleetReport,
    /// The aggregation the networked path produced.
    pub report: TelemetryReport,
    /// The reference projection straight off the in-process merge.
    pub reference: TelemetryReport,
    /// Final server counters.
    pub server: ServerStats,
    /// Whether `report` and `reference` serialize to the same bytes.
    pub byte_identical: bool,
}

/// Runs the fleet, uploads every job's report over loopback TCP, and
/// differentially checks the networked aggregation against the
/// in-process merge. `top_n` bounds the exported group list.
pub fn run_fleet_telemetry(
    spec: &FleetSpec,
    net: &NetFaultConfig,
    top_n: usize,
) -> TelemetryFleetOutcome {
    let (mut fleet, jobs) = run_fleet_with_reports(spec);
    let threads = spec.threads.max(1);

    // Queue depth ≥ upload threads ⇒ a full queue is impossible, so
    // the chaos tally cannot pick up scheduling-dependent NACK counts.
    let server = TelemetryServer::builder()
        .addr("127.0.0.1:0")
        .shards(threads)
        .queue_capacity(threads.max(ServerConfig::default().queue_capacity))
        .start()
        .expect("bind loopback server");
    let addr = server.local_addr();

    // Upload every job's report: `threads` worker threads, each device
    // through its own deterministically seeded uploader. Tallies are
    // keyed by job index so the merge below runs in device order.
    let tallies: Mutex<Vec<(usize, NetFaultTally)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    thread::scope(|scope| {
        for t in 0..threads {
            let jobs = &jobs;
            let tallies = &tallies;
            let net = *net;
            scope.spawn(move || {
                for job in jobs.iter().skip(t).step_by(threads) {
                    let tally = upload_job(addr, job, &net, spec.root_seed);
                    tallies.lock().expect("tally lock").push((job.index, tally));
                }
            });
        }
    });

    // Networked path: query over TCP like any operator client would.
    let mut client = Uploader::plain(addr);
    let report = client.query(top_n).expect("loopback query");
    client.shutdown().expect("loopback shutdown");
    let server_stats = server.join();

    let reference = TelemetryReport::from_fleet(&fleet, top_n);
    let byte_identical = report.to_json() == reference.to_json();

    // Merge the per-device transport tallies in device order into the
    // fleet's chaos accounting (chaos runs only, so clean reports stay
    // byte-identical to a telemetry-free build's).
    if let Some(chaos) = fleet.chaos.as_mut() {
        let mut merged = NetFaultTally::default();
        let mut per_device = tallies.into_inner().expect("tally lock");
        per_device.sort_by_key(|(index, _)| *index);
        for (_, tally) in &per_device {
            merged.merge(tally);
        }
        chaos.net = merged;
    }

    TelemetryFleetOutcome {
        fleet,
        report,
        reference,
        server: server_stats,
        byte_identical,
    }
}

/// Uploads one job's report through a per-device uploader and returns
/// the device's transport tally.
fn upload_job(
    addr: std::net::SocketAddr,
    job: &JobReport,
    net: &NetFaultConfig,
    root_seed: u64,
) -> NetFaultTally {
    let cfg = UploaderConfig {
        net_faults: *net,
        ..UploaderConfig::default()
    };
    let mut uploader = Uploader::new(addr, job.device as u64, root_seed, cfg);
    let batch = UploadBatch {
        app: job.app.clone(),
        device: job.device,
        seq: 0,
        items: vec![TelemetryItem::Report(job.report.clone())],
    };
    uploader
        .upload(&batch)
        .unwrap_or_else(|e| panic!("device {} upload failed: {e}", job.device));
    uploader.tally()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hangdoctor::HangDoctorConfig;
    use hd_appmodel::corpus::table5;
    use hd_faults::FaultConfig;
    use hd_fleet::DeviceProfile;

    fn small_spec() -> FleetSpec {
        FleetSpec {
            apps: vec![table5::k9mail(), table5::omninotes()],
            profiles: DeviceProfile::default_set(),
            devices_per_app: 2,
            executions_per_action: 2,
            root_seed: 11,
            threads: 2,
            config: HangDoctorConfig::default(),
            apidb_year: 2017,
            faults: FaultConfig::none(),
        }
    }

    #[test]
    fn loopback_differential_is_byte_identical() {
        let outcome = run_fleet_telemetry(&small_spec(), &NetFaultConfig::none(), 25);
        assert!(
            outcome.byte_identical,
            "networked:\n{}\nreference:\n{}",
            outcome.report.to_json(),
            outcome.reference.to_json()
        );
        assert_eq!(outcome.server.nacks_sent, 0);
        assert_eq!(
            outcome.server.ingest.batches_applied as usize,
            outcome.fleet.merged.jobs
        );
    }
}
