//! Durable ingest: a per-shard append-only write-ahead log with
//! periodic compacted snapshots.
//!
//! Every applied batch is framed into the shard's WAL **before** it is
//! merged into the aggregation store, so a killed-and-restarted node
//! replays to the identical aggregate. Record framing reuses the wire
//! layer's canonical-JSON encoding and adds an integrity word:
//!
//! ```text
//! +------+----------------+---------------+------------------------+
//! | HDWL | u32 BE length  | u32 BE CRC32  | canonical JSON payload |
//! +------+----------------+---------------+------------------------+
//! ```
//!
//! The first record of every file is a [`WalHeader`] carrying the WAL
//! schema tag plus the owning `(node, shard)`; each subsequent record
//! is a [`WalBatch`] — the upload batch together with the content
//! fingerprint the live ingest deduplicated it under, so replay applies
//! exactly the fingerprints the original run did without
//! re-serializing a byte.
//!
//! Failure semantics (pinned by `tests/wal.rs`):
//!
//! * a **torn tail** — the process died mid-append — is dropped
//!   cleanly on replay and the file is truncated back to its last
//!   complete record;
//! * a **CRC-corrupt** record inside the valid region is data loss the
//!   log cannot self-heal, and surfaces as a typed
//!   [`TelemetryError::WalCorrupt`], never a panic;
//! * **snapshot + WAL replay ≡ pure-WAL replay**, byte-for-byte:
//!   compaction snapshots the store (including its fingerprint set),
//!   truncates the log, and relies on idempotent ingest to absorb any
//!   record that races the truncation.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::TelemetryError;
use crate::store::{AggregationStore, StoreSnapshot};
use crate::wire::UploadBatch;

/// Magic prefix of every WAL and snapshot record.
pub const WAL_MAGIC: [u8; 4] = *b"HDWL";

/// Schema tag carried by every WAL file header.
pub const WAL_SCHEMA: &str = "hang-doctor/telemetry-wal/v1";

/// Upper bound on one WAL record's payload, bytes (same cap as the
/// wire layer).
pub const MAX_WAL_RECORD: usize = crate::wire::MAX_FRAME;

/// The first record of every WAL file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalHeader {
    /// WAL format tag ([`WAL_SCHEMA`]).
    pub schema: String,
    /// Node the log belongs to.
    pub node: u64,
    /// Shard within the node.
    pub shard: usize,
}

/// One logged ingest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WalBatch {
    /// The content fingerprint the live ingest applied the batch under.
    pub fingerprint: u64,
    /// The batch itself.
    pub batch: UploadBatch,
}

/// A WAL record: header or batch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WalRecord {
    /// File header (first record).
    Header(WalHeader),
    /// One applied upload batch.
    Batch(WalBatch),
}

/// What scanning a WAL file recovered.
#[derive(Debug)]
pub struct WalReplay {
    /// The file header, if the file had one.
    pub header: Option<WalHeader>,
    /// Every complete, integrity-checked batch record, in append order.
    pub batches: Vec<WalBatch>,
    /// Byte length of the valid prefix (everything after it is torn).
    pub clean_len: u64,
    /// Whether a torn tail record was dropped.
    pub torn_tail_dropped: bool,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, no external deps.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) over a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames one record: magic, length, CRC, canonical-JSON payload.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let json = serde_json::to_string(record).expect("WAL record serializes");
    let payload = json.as_bytes();
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Scans a WAL byte image into its records.
///
/// A truncated record at the very end of the image (torn write) is
/// dropped cleanly; corruption *inside* the valid region — bad magic,
/// an oversized length, a CRC mismatch, or undecodable JSON in a
/// complete record — is a typed [`TelemetryError::WalCorrupt`].
pub fn scan_wal(bytes: &[u8]) -> Result<WalReplay, TelemetryError> {
    let mut header = None;
    let mut batches = Vec::new();
    let mut offset = 0usize;
    let mut torn = false;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < 12 {
            torn = true; // partial record header at EOF
            break;
        }
        let magic: [u8; 4] = rest[0..4].try_into().expect("4 bytes");
        if magic != WAL_MAGIC {
            return Err(TelemetryError::WalCorrupt {
                offset: offset as u64,
                reason: format!("bad record magic {magic:?}"),
            });
        }
        let len = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
        if len > MAX_WAL_RECORD {
            return Err(TelemetryError::WalCorrupt {
                offset: offset as u64,
                reason: format!("record length {len} exceeds the {MAX_WAL_RECORD}-byte cap"),
            });
        }
        if rest.len() < 12 + len {
            torn = true; // payload cut off at EOF
            break;
        }
        let want = u32::from_be_bytes(rest[8..12].try_into().expect("4 bytes"));
        let payload = &rest[12..12 + len];
        let got = crc32(payload);
        if got != want {
            return Err(TelemetryError::WalCorrupt {
                offset: offset as u64,
                reason: format!("CRC mismatch: stored {want:#010x}, computed {got:#010x}"),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|e| TelemetryError::WalCorrupt {
            offset: offset as u64,
            reason: format!("record is not UTF-8: {e}"),
        })?;
        let record: WalRecord =
            serde_json::from_str(text).map_err(|e| TelemetryError::WalCorrupt {
                offset: offset as u64,
                reason: format!("record JSON undecodable: {e}"),
            })?;
        match record {
            WalRecord::Header(h) => {
                if h.schema != WAL_SCHEMA {
                    return Err(TelemetryError::SchemaDrift(h.schema));
                }
                header = Some(h);
            }
            WalRecord::Batch(b) => batches.push(b),
        }
        offset += 12 + len;
    }
    Ok(WalReplay {
        header,
        batches,
        clean_len: offset as u64,
        torn_tail_dropped: torn,
    })
}

/// An open, append-mode WAL file for one shard.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Opens (or creates) the WAL at `path`, replaying whatever it
    /// holds. A torn tail is truncated away so subsequent appends
    /// extend a clean log; in-region corruption is returned as
    /// [`TelemetryError::WalCorrupt`].
    pub fn open(path: &Path, node: u64, shard: usize) -> Result<(Wal, WalReplay), TelemetryError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = scan_wal(&bytes)?;
        if replay.torn_tail_dropped {
            file.set_len(replay.clean_len)?;
        }
        file.seek(SeekFrom::Start(replay.clean_len))?;
        let mut wal = Wal {
            path: path.to_path_buf(),
            file,
        };
        if replay.header.is_none() {
            wal.write_record(&WalRecord::Header(WalHeader {
                schema: WAL_SCHEMA.to_string(),
                node,
                shard,
            }))?;
        }
        Ok((wal, replay))
    }

    /// The file this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_record(&mut self, record: &WalRecord) -> Result<(), TelemetryError> {
        let frame = encode_record(record);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        Ok(())
    }

    /// Appends one applied batch. Called by the shard worker *before*
    /// the batch is merged into the store.
    pub fn append(&mut self, fingerprint: u64, batch: &UploadBatch) -> Result<(), TelemetryError> {
        self.write_record(&WalRecord::Batch(WalBatch {
            fingerprint,
            batch: batch.clone(),
        }))
    }

    /// Compaction: truncates the log back to a fresh header. Called
    /// only after the covering snapshot has been durably renamed into
    /// place, so a crash between the two leaves a log whose records
    /// the snapshot's fingerprint set absorbs as duplicates.
    pub fn reset(&mut self, node: u64, shard: usize) -> Result<(), TelemetryError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.write_record(&WalRecord::Header(WalHeader {
            schema: WAL_SCHEMA.to_string(),
            node,
            shard,
        }))
    }
}

/// Writes a compaction snapshot durably: frame (magic + length + CRC +
/// canonical JSON), to a temp file, then an atomic rename.
pub fn write_snapshot(path: &Path, snapshot: &StoreSnapshot) -> Result<(), TelemetryError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string(snapshot).expect("snapshot serializes");
    let payload = json.as_bytes();
    let mut framed = Vec::with_capacity(12 + payload.len());
    framed.extend_from_slice(&WAL_MAGIC);
    framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    framed.extend_from_slice(&crc32(payload).to_be_bytes());
    framed.extend_from_slice(payload);
    let tmp = path.with_extension("snap.tmp");
    std::fs::write(&tmp, &framed)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a compaction snapshot if one exists. A missing file is
/// `Ok(None)`; a present-but-damaged file is [`TelemetryError::WalCorrupt`].
pub fn read_snapshot(path: &Path) -> Result<Option<StoreSnapshot>, TelemetryError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 12 || bytes[0..4] != WAL_MAGIC {
        return Err(TelemetryError::WalCorrupt {
            offset: 0,
            reason: "snapshot header missing or bad magic".to_string(),
        });
    }
    let len = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if bytes.len() < 12 + len {
        return Err(TelemetryError::WalCorrupt {
            offset: 0,
            reason: format!(
                "snapshot truncated: declared {len} payload bytes, file has {}",
                bytes.len().saturating_sub(12)
            ),
        });
    }
    let want = u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..12 + len];
    let got = crc32(payload);
    if got != want {
        return Err(TelemetryError::WalCorrupt {
            offset: 0,
            reason: format!("snapshot CRC mismatch: stored {want:#010x}, computed {got:#010x}"),
        });
    }
    let text = std::str::from_utf8(payload).map_err(|e| TelemetryError::WalCorrupt {
        offset: 0,
        reason: format!("snapshot is not UTF-8: {e}"),
    })?;
    let snap: StoreSnapshot =
        serde_json::from_str(text).map_err(|e| TelemetryError::WalCorrupt {
            offset: 0,
            reason: format!("snapshot JSON undecodable: {e}"),
        })?;
    if snap.schema != crate::store::SNAPSHOT_SCHEMA {
        return Err(TelemetryError::SchemaDrift(snap.schema));
    }
    Ok(Some(snap))
}

/// The WAL file of one shard under a node's durability directory.
pub fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

/// The snapshot file of one shard under a node's durability directory.
pub fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.snap"))
}

/// Recovers one shard's store from its snapshot (if any) plus WAL
/// replay, and returns the open log ready for appends along with the
/// number of records replayed from it (snapshot-covered state is
/// restored, not replayed). The recovery invariant — snapshot + WAL ≡
/// pure WAL, byte-for-byte — holds because the snapshot carries the
/// fingerprint set, so replayed records the snapshot already covers
/// are absorbed as duplicates.
pub fn recover_shard(
    dir: &Path,
    node: u64,
    shard: usize,
) -> Result<(AggregationStore, Wal, u64), TelemetryError> {
    let snap = read_snapshot(&snapshot_path(dir, shard))?;
    let mut store = match &snap {
        Some(s) => AggregationStore::from_snapshot(s),
        None => AggregationStore::new(),
    };
    let (wal, replay) = Wal::open(&wal_path(dir, shard), node, shard)?;
    for rec in &replay.batches {
        store.ingest_prehashed(&rec.batch, rec.fingerprint);
    }
    Ok((store, wal, replay.batches.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Published IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_round_trips() {
        let rec = WalRecord::Header(WalHeader {
            schema: WAL_SCHEMA.to_string(),
            node: 3,
            shard: 1,
        });
        let framed = encode_record(&rec);
        let replay = scan_wal(&framed).unwrap();
        assert_eq!(
            replay.header,
            Some(WalHeader {
                schema: WAL_SCHEMA.to_string(),
                node: 3,
                shard: 1
            })
        );
        assert!(!replay.torn_tail_dropped);
        assert_eq!(replay.clean_len, framed.len() as u64);
    }
}
