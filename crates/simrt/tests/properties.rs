//! Property-based tests of the raw simulator: random step programs must
//! uphold the scheduler/counter invariants under any core count.

use proptest::prelude::*;

use hd_simrt::{
    ActionRequest, ActionUid, FrameTable, HwEvent, MemProfile, SimConfig, SimTime, Simulator, Step,
    MILLIS,
};

/// A single random timed step.
fn arb_step(frame_count: u32) -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..80).prop_map(|ms| Step::Cpu {
            ns: ms * MILLIS,
            profile: MemProfile::ui(),
        }),
        (1u64..60).prop_map(|ms| Step::Cpu {
            ns: ms * MILLIS,
            profile: MemProfile::memory_heavy(),
        }),
        (1u64..120).prop_map(|ms| Step::Io { ns: ms * MILLIS }),
        (1u32..12, 1u64..6).prop_map(|(frames, ms)| Step::PostRender {
            frames,
            frame_ns: ms * MILLIS,
        }),
        (0..frame_count).prop_map(|f| Step::Push(hd_simrt::FrameId(f))),
    ]
}

/// A balanced random step program: pushes get matching pops appended.
fn arb_event() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(arb_step(3), 1..8).prop_map(|mut steps| {
        let pushes = steps.iter().filter(|s| matches!(s, Step::Push(_))).count();
        for _ in 0..pushes {
            steps.push(Step::Pop);
        }
        steps
    })
}

fn sim_with(events: Vec<Vec<Step>>, cores: usize, seed: u64) -> Simulator {
    let mut table = FrameTable::new();
    for i in 0..3 {
        table.intern_new(&format!("p.C.m{i}"), "C.java", i);
    }
    let mut sim = Simulator::new(
        SimConfig {
            seed,
            cores,
            ..SimConfig::default()
        },
        table,
    );
    sim.schedule_action(
        SimTime::from_ms(10),
        ActionRequest {
            uid: ActionUid(1),
            name: "random".into(),
            events,
        },
    );
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any balanced step program terminates, on 1, 2, or 4 cores, with
    /// consistent accounting.
    #[test]
    fn random_programs_terminate_on_any_core_count(
        events in proptest::collection::vec(arb_event(), 1..4),
        cores in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let total_cpu: u64 = events
            .iter()
            .flatten()
            .map(Step::cpu_ns)
            .sum();
        let total_io: u64 = events.iter().flatten().map(Step::io_ns).sum();
        let render_cpu: u64 = events
            .iter()
            .flatten()
            .map(|s| match s {
                Step::PostRender { frames, frame_ns } => u64::from(*frames) * frame_ns,
                _ => 0,
            })
            .sum();

        let mut sim = sim_with(events.clone(), cores, seed);
        let summary = sim.run();
        prop_assert!(!summary.truncated, "program did not terminate");
        prop_assert_eq!(summary.actions_completed, 1);

        let rec = &sim.records()[0];
        prop_assert_eq!(rec.event_responses.len(), events.len());
        // Each event's response is at least its own busy time.
        for (ev, &resp) in events.iter().zip(&rec.event_responses) {
            let busy: u64 = ev.iter().map(|s| s.cpu_ns() + s.io_ns()).sum();
            prop_assert!(resp >= busy, "response {resp} < busy {busy}");
        }
        // Main-thread task clock equals exactly the main CPU work.
        let main_clock = sim.thread_counter(sim.main_tid(), HwEvent::TaskClock);
        prop_assert!((main_clock - total_cpu as f64).abs() < 1.0);
        // Render-thread task clock equals the posted frame work.
        let render_clock = sim.thread_counter(sim.render_tid(), HwEvent::TaskClock);
        prop_assert!((render_clock - render_cpu as f64).abs() < 1.0);
        // The action cannot end before all its busy time elapsed.
        prop_assert!(rec.ended - rec.began >= total_cpu + total_io);
        // Each I/O block is at least one main-thread context switch.
        let io_blocks = events
            .iter()
            .flatten()
            .filter(|s| matches!(s, Step::Io { .. }))
            .count() as f64;
        let cs = sim.thread_counter(sim.main_tid(), HwEvent::ContextSwitches);
        prop_assert!(cs >= io_blocks, "cs {cs} < io blocks {io_blocks}");
    }

    /// Counters never decrease and page-fault identities hold at the end
    /// of any program.
    #[test]
    fn counter_identities(
        events in proptest::collection::vec(arb_event(), 1..3),
        seed in 0u64..10_000,
    ) {
        let mut sim = sim_with(events, 2, seed);
        sim.run();
        for tid in [sim.main_tid(), sim.render_tid()] {
            let pf = sim.thread_counter(tid, HwEvent::PageFaults);
            let minor = sim.thread_counter(tid, HwEvent::MinorFaults);
            let major = sim.thread_counter(tid, HwEvent::MajorFaults);
            prop_assert!((pf - (minor + major)).abs() < 1e-6);
            prop_assert!(sim.thread_counter(tid, HwEvent::TaskClock) >= 0.0);
            prop_assert!(
                (sim.thread_counter(tid, HwEvent::TaskClock)
                    - sim.thread_counter(tid, HwEvent::CpuClock))
                .abs()
                    < 1e-6
            );
        }
    }

    /// More cores never increase a single action's response time
    /// (the main thread stops being preempted into a queue).
    #[test]
    fn single_action_response_no_worse_with_more_cores(
        events in proptest::collection::vec(arb_event(), 1..3),
        seed in 0u64..1_000,
    ) {
        let resp = |cores: usize| {
            let mut sim = sim_with(events.clone(), cores, seed);
            sim.run();
            sim.records()[0].max_response_ns()
        };
        let one = resp(1);
        let four = resp(4);
        // Allow jitter slack: different core counts draw different noise.
        prop_assert!(
            four as f64 <= one as f64 * 1.25 + (20 * MILLIS) as f64,
            "4 cores {four} much slower than 1 core {one}"
        );
    }
}
