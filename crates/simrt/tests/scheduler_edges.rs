//! Scheduler and runtime edge cases that unit tests don't reach.

use std::cell::RefCell;
use std::rc::Rc;

use hd_simrt::{
    ActionRequest, ActionUid, FrameTable, HwEvent, MemProfile, MessageInfo, Probe, ProbeCtx,
    SimConfig, SimTime, Simulator, Step, TimelineRecorder, MILLIS,
};

fn table_with_frames() -> (FrameTable, hd_simrt::FrameId) {
    let mut t = FrameTable::new();
    let f = t.intern_new("edge.App.handler", "App.java", 1);
    (t, f)
}

fn cpu(ms: u64) -> Step {
    Step::Cpu {
        ns: ms * MILLIS,
        profile: MemProfile::ui(),
    }
}

#[test]
fn single_core_serializes_main_and_render() {
    // On one core the render thread can only drain frames when the main
    // thread is off-CPU, so the action's end stretches past main+render
    // work combined.
    let (t, f) = table_with_frames();
    let mut sim = Simulator::new(
        SimConfig {
            cores: 1,
            ..SimConfig::default()
        },
        t,
    );
    sim.schedule_action(
        SimTime::from_ms(1),
        ActionRequest {
            uid: ActionUid(1),
            name: "serial".into(),
            events: vec![vec![
                Step::Push(f),
                cpu(50),
                Step::PostRender {
                    frames: 10,
                    frame_ns: 4 * MILLIS,
                },
                cpu(30),
                Step::Pop,
            ]],
        },
    );
    let summary = sim.run();
    assert!(!summary.truncated);
    let rec = &sim.records()[0];
    // 80 ms main + 40 ms render must fit within the action window.
    assert!(rec.ended - rec.began >= 120 * MILLIS);
    // Render work ran despite the contention.
    assert!(sim.thread_counter(sim.render_tid(), HwEvent::TaskClock) >= (40 * MILLIS) as f64);
}

#[test]
fn worker_pool_handles_more_tasks_than_workers() {
    // Four offloaded blocking tasks over two workers: everything
    // completes and the main thread stays responsive.
    let (t, f) = table_with_frames();
    let mut sim = Simulator::new(SimConfig::default(), t);
    let worker_task = vec![Step::Io { ns: 120 * MILLIS }, cpu(10)];
    sim.schedule_action(
        SimTime::from_ms(1),
        ActionRequest {
            uid: ActionUid(1),
            name: "offload-burst".into(),
            events: vec![vec![
                Step::Push(f),
                Step::PostWorker(worker_task.clone()),
                Step::PostWorker(worker_task.clone()),
                Step::PostWorker(worker_task.clone()),
                Step::PostWorker(worker_task),
                cpu(20),
                Step::Pop,
            ]],
        },
    );
    let summary = sim.run();
    assert!(!summary.truncated, "worker backlog must drain");
    assert!(sim.records()[0].max_response_ns() < 100 * MILLIS);
    // All four tasks ran: worker CPU totals 4 × 10 ms.
    let worker_cpu: f64 = (0..2)
        .map(|i| {
            sim.thread_counter(
                hd_simrt::ThreadId(sim.main_tid().0 + 2 + i),
                HwEvent::TaskClock,
            )
        })
        .sum();
    assert!((worker_cpu - (40 * MILLIS) as f64).abs() < 1e3);
}

#[test]
fn zero_and_tiny_durations_are_harmless() {
    let (t, f) = table_with_frames();
    let mut sim = Simulator::new(SimConfig::default(), t);
    sim.schedule_action(
        SimTime::from_ms(1),
        ActionRequest {
            uid: ActionUid(1),
            name: "tiny".into(),
            events: vec![vec![
                Step::Push(f),
                Step::Cpu {
                    ns: 0,
                    profile: MemProfile::ui(),
                },
                Step::Io { ns: 1 },
                Step::Cpu {
                    ns: 1,
                    profile: MemProfile::ui(),
                },
                Step::PostRender {
                    frames: 0,
                    frame_ns: 4 * MILLIS,
                },
                Step::Pop,
            ]],
        },
    );
    let summary = sim.run();
    assert_eq!(summary.actions_completed, 1);
    assert!(sim.records()[0].max_response_ns() < 5 * MILLIS);
}

#[test]
fn back_to_back_actions_queue_fifo() {
    // Ten actions posted at the same instant execute in posting order.
    let (t, f) = table_with_frames();
    let mut sim = Simulator::new(SimConfig::default(), t);
    let (rec, out) = TimelineRecorder::new();
    sim.add_probe(Box::new(rec));
    for i in 0..10u64 {
        sim.schedule_action(
            SimTime::from_ms(5),
            ActionRequest {
                uid: ActionUid(i),
                name: format!("burst {i}"),
                events: vec![vec![Step::Push(f), cpu(8), Step::Pop]],
            },
        );
    }
    let summary = sim.run();
    assert_eq!(summary.actions_completed, 10);
    let timeline = out.borrow();
    for (i, d) in timeline.dispatches.iter().enumerate() {
        assert_eq!(d.uid, ActionUid(i as u64), "out of order at {i}");
        if i > 0 {
            assert!(d.began >= timeline.dispatches[i - 1].ended);
        }
    }
}

#[test]
fn probe_timer_in_the_past_fires_immediately_not_never() {
    struct PastTimer {
        fired: Rc<RefCell<bool>>,
    }
    impl Probe for PastTimer {
        fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
            // Deliberately set a timer at t=0, far in the past.
            ctx.set_timer(SimTime::ZERO, 9);
        }
        fn on_timer(&mut self, _ctx: &mut ProbeCtx<'_>, token: u64) {
            assert_eq!(token, 9);
            *self.fired.borrow_mut() = true;
        }
    }
    let (t, f) = table_with_frames();
    let mut sim = Simulator::new(SimConfig::default(), t);
    let fired = Rc::new(RefCell::new(false));
    sim.add_probe(Box::new(PastTimer {
        fired: fired.clone(),
    }));
    sim.schedule_action(
        SimTime::from_ms(50),
        ActionRequest {
            uid: ActionUid(1),
            name: "t".into(),
            events: vec![vec![Step::Push(f), cpu(5), Step::Pop]],
        },
    );
    sim.run();
    assert!(*fired.borrow(), "past-dated timer must be clamped to now");
}

#[test]
fn action_at_time_zero_works() {
    let (t, f) = table_with_frames();
    let mut sim = Simulator::new(SimConfig::default(), t);
    sim.schedule_action(
        SimTime::ZERO,
        ActionRequest {
            uid: ActionUid(1),
            name: "boot".into(),
            events: vec![vec![Step::Push(f), cpu(12), Step::Pop]],
        },
    );
    let summary = sim.run();
    assert_eq!(summary.actions_completed, 1);
    assert!(sim.records()[0].began.as_ns() <= MILLIS);
}

#[test]
fn deep_nested_stacks_survive_sampling() {
    // A 40-frame-deep call chain: samples capture the full depth.
    struct DepthProbe {
        max_depth: Rc<RefCell<usize>>,
    }
    impl Probe for DepthProbe {
        fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
            ctx.set_timer(ctx.now() + 10 * MILLIS, 1);
        }
        fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, _token: u64) {
            let d = ctx.main_stack().len();
            let mut m = self.max_depth.borrow_mut();
            if d > *m {
                *m = d;
            }
        }
    }
    let mut t = FrameTable::new();
    let mut steps = Vec::new();
    for i in 0..40 {
        steps.push(Step::Push(t.intern_new(
            &format!("deep.Chain.level{i}"),
            "Chain.java",
            i,
        )));
    }
    steps.push(cpu(30));
    for _ in 0..40 {
        steps.push(Step::Pop);
    }
    let mut sim = Simulator::new(SimConfig::default(), t);
    let max_depth = Rc::new(RefCell::new(0));
    sim.add_probe(Box::new(DepthProbe {
        max_depth: max_depth.clone(),
    }));
    sim.schedule_action(
        SimTime::from_ms(1),
        ActionRequest {
            uid: ActionUid(1),
            name: "deep".into(),
            events: vec![steps],
        },
    );
    sim.run();
    assert_eq!(*max_depth.borrow(), 40);
}

#[test]
fn preemption_rate_is_invariant_to_core_count() {
    // Device housekeeping is modeled as one pinned system thread per
    // core, so a busy thread is preempted at the same per-CPU-time rate
    // whichever core it lands on: the context-switch signal the
    // S-Checker relies on does not depend on the device's core count
    // (the paper's cross-device generality claim, Section 3.3.1).
    let run = |cores: usize| {
        let mut table = FrameTable::new();
        let f = table.intern_new("edge.App.h", "App.java", 1);
        let mut sim = Simulator::new(
            SimConfig {
                cores,
                ..SimConfig::default()
            },
            table,
        );
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "busy".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 300 * MILLIS,
                        profile: MemProfile::compute(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        (
            sim.thread_counter(sim.main_tid(), HwEvent::ContextSwitches),
            sim.thread_counter(sim.main_tid(), HwEvent::CpuMigrations),
        )
    };
    let (cs2, _mig2) = run(2);
    let (cs8, _mig8) = run(8);
    let ratio = cs8 / cs2;
    assert!(
        (0.7..1.3).contains(&ratio),
        "cs rate should be core-count invariant: 2-core {cs2}, 8-core {cs8}"
    );
    // And there is real preemption happening at all (not idle).
    assert!(cs2 > 20.0, "cs2 = {cs2}");
}
