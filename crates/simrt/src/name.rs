//! Interned action names.
//!
//! Action names are reporting metadata: the hot loop only ever needs an
//! identity to thread through messages, notices, and records, and the
//! string itself is resolved at the rare points where a human-readable
//! report is built. Mirroring [`crate::FrameTable`], names are interned
//! once at schedule time so every per-event payload carries a `Copy`
//! 4-byte id instead of a heap-allocated `String`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Index of an interned action name in a [`NameTable`].
///
/// Serializes transparently as its `u32`, so records stay compact.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NameId(pub u32);

/// Interning table mapping action names to dense [`NameId`]s.
///
/// Interning happens on the single simulation thread in schedule order,
/// so ids are deterministic for a given input sequence.
#[derive(Clone, Debug, Default)]
pub struct NameTable {
    names: Vec<String>,
    index: HashMap<String, NameId>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh). Allocates
    /// only the first time a name is seen.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Returns the number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NameId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut t = NameTable::new();
        let a = t.intern("open email");
        let b = t.intern("open email");
        let c = t.intern("scroll");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), "open email");
        assert_eq!(t.get(c), "scroll");
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = NameTable::new();
        let ids: Vec<NameId> = (0..4).map(|i| t.intern(&format!("act{i}"))).collect();
        assert_eq!(ids, vec![NameId(0), NameId(1), NameId(2), NameId(3)]);
        let seen: Vec<NameId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, seen);
    }
}
