//! Execution timeline recording.
//!
//! [`TimelineRecorder`] is a passive probe that captures every dispatch
//! and action as a time span — the raw material of the paper's execution
//! traces (Figures 1, 6(a), 7). It charges no monitoring cost: it is an
//! analysis convenience of the reproduction, not a modeled detector.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::looper::{ActionRecord, ActionUid, ExecId, MessageInfo};
use crate::probe::Probe;
use crate::simulator::ProbeCtx;
use crate::time::{SimTime, MILLIS};

/// One input-event dispatch on the main thread.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DispatchSpan {
    /// Execution the dispatch belongs to.
    pub exec_id: ExecId,
    /// Action kind.
    pub uid: ActionUid,
    /// Action name.
    pub action_name: String,
    /// Input-event index.
    pub event_index: usize,
    /// Dequeue time.
    pub began: SimTime,
    /// Completion time.
    pub ended: SimTime,
}

impl DispatchSpan {
    /// The event's response time, ns.
    pub fn response_ns(&self) -> u64 {
        self.ended - self.began
    }

    /// Whether this dispatch is a soft hang at the given threshold.
    pub fn is_hang(&self, timeout_ns: u64) -> bool {
        self.response_ns() > timeout_ns
    }
}

/// The recorded timeline of one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// All dispatches, in completion order.
    pub dispatches: Vec<DispatchSpan>,
    /// All completed actions.
    pub actions: Vec<ActionRecord>,
}

impl Timeline {
    /// Dispatches that hung at the 100 ms perceivable threshold.
    pub fn hangs(&self) -> Vec<&DispatchSpan> {
        self.dispatches
            .iter()
            .filter(|d| d.is_hang(100 * MILLIS))
            .collect()
    }

    /// Renders an ASCII Gantt of the dispatches, `width` columns wide.
    ///
    /// Hanging dispatches render as `#`, responsive ones as `=`.
    pub fn render_ascii(&self, width: usize) -> String {
        let Some(first) = self.dispatches.first() else {
            return String::from("(empty timeline)\n");
        };
        let start = first.began;
        let end = self
            .dispatches
            .iter()
            .map(|d| d.ended)
            .max()
            .unwrap_or(start);
        let total = (end - start).max(1);
        let col = |t: SimTime| -> usize {
            ((t - start) as u128 * (width.max(2) as u128 - 1) / total as u128) as usize
        };
        let mut out = String::new();
        for d in &self.dispatches {
            let (a, b) = (col(d.began), col(d.ended).max(col(d.began) + 1));
            let mut lane = vec![b' '; width];
            let glyph = if d.is_hang(100 * MILLIS) { b'#' } else { b'=' };
            for cell in lane.iter_mut().take(b.min(width)).skip(a) {
                *cell = glyph;
            }
            out.push_str(&format!(
                "{:<22} |{}| {:>6.0} ms\n",
                format!("{}[{}]", d.action_name, d.event_index),
                String::from_utf8_lossy(&lane),
                d.response_ns() as f64 / 1e6,
            ));
        }
        out
    }
}

/// The recording probe; clone the handle before installing.
pub struct TimelineRecorder {
    open: Option<(MessageInfo, SimTime)>,
    out: Rc<RefCell<Timeline>>,
}

impl TimelineRecorder {
    /// Creates a recorder and the shared handle to its timeline.
    pub fn new() -> (TimelineRecorder, Rc<RefCell<Timeline>>) {
        let out = Rc::new(RefCell::new(Timeline::default()));
        (
            TimelineRecorder {
                open: None,
                out: out.clone(),
            },
            out,
        )
    }
}

impl Probe for TimelineRecorder {
    fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo) {
        self.open = Some((*info, ctx.now()));
    }

    fn on_dispatch_end(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo, _response_ns: u64) {
        if let Some((open_info, began)) = self.open.take() {
            debug_assert_eq!(open_info.exec_id, info.exec_id);
            let action_name = ctx.action_name(info.action_name).to_string();
            self.out.borrow_mut().dispatches.push(DispatchSpan {
                exec_id: info.exec_id,
                uid: info.action_uid,
                action_name,
                event_index: info.event_index,
                began,
                ended: ctx.now(),
            });
        }
    }

    fn on_action_end(&mut self, _ctx: &mut ProbeCtx<'_>, record: &ActionRecord) {
        self.out.borrow_mut().actions.push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;
    use crate::looper::ActionRequest;
    use crate::simulator::{SimConfig, Simulator};
    use crate::work::{MemProfile, Step};

    fn run_recorded() -> Timeline {
        let mut table = FrameTable::new();
        let f = table.intern_new("a.B.c", "B.java", 1);
        let mut sim = Simulator::new(SimConfig::default(), table);
        let (rec, out) = TimelineRecorder::new();
        sim.add_probe(Box::new(rec));
        sim.schedule_action(
            SimTime::from_ms(5),
            ActionRequest {
                uid: ActionUid(1),
                name: "two-event".into(),
                events: vec![
                    vec![
                        Step::Push(f),
                        Step::Cpu {
                            ns: 180 * MILLIS,
                            profile: MemProfile::compute(),
                        },
                        Step::Pop,
                    ],
                    vec![
                        Step::Push(f),
                        Step::Cpu {
                            ns: 20 * MILLIS,
                            profile: MemProfile::ui(),
                        },
                        Step::Pop,
                    ],
                ],
            },
        );
        sim.run();
        let t = out.borrow().clone();
        t
    }

    #[test]
    fn records_every_dispatch_with_correct_spans() {
        let t = run_recorded();
        assert_eq!(t.dispatches.len(), 2);
        assert_eq!(t.actions.len(), 1);
        let first = &t.dispatches[0];
        assert!(first.is_hang(100 * MILLIS));
        assert!(first.response_ns() >= 180 * MILLIS);
        let second = &t.dispatches[1];
        assert!(!second.is_hang(100 * MILLIS));
        // The second dispatch starts after the first ends.
        assert!(second.began >= first.ended);
        assert_eq!(t.hangs().len(), 1);
    }

    #[test]
    fn recorder_charges_no_monitoring_cost() {
        let mut table = FrameTable::new();
        let f = table.intern_new("a.B.c", "B.java", 1);
        let mut sim = Simulator::new(SimConfig::default(), table);
        let (rec, _out) = TimelineRecorder::new();
        sim.add_probe(Box::new(rec));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "t".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 10 * MILLIS,
                        profile: MemProfile::ui(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        assert_eq!(sim.monitor_cost().cpu_ns, 0);
    }

    #[test]
    fn ascii_rendering_marks_hangs() {
        let t = run_recorded();
        let art = t.render_ascii(40);
        assert!(art.contains('#'), "{art}");
        assert!(art.contains('='), "{art}");
        assert!(art.contains("two-event[0]"));
        let empty = Timeline::default();
        assert_eq!(empty.render_ascii(40), "(empty timeline)\n");
    }
}
