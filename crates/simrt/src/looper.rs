//! Looper, messages, and user actions.
//!
//! A *user action* (tap, scroll, resume...) is delivered to the app as one
//! or more *input events*; each input event is a message executed, in
//! queue order, by the main thread. Mirroring Android's
//! `Looper.setMessageLogging` hook, the simulator reports the dispatch
//! begin/end of every message to the installed probes, which is exactly
//! the information Hang Doctor's Response Time Monitor consumes.
//!
//! The *response time of an input event* is the interval from dequeue to
//! completion; the *response time of an action* is the maximum over its
//! input events (Section 2.2 of the paper).

use serde::{Deserialize, Serialize};

use crate::name::NameId;
use crate::time::SimTime;
use crate::work::Step;

/// Stable identifier of a user action *kind* within an app, assigned by
/// the App Injector (e.g. "open email", "scroll timeline").
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ActionUid(pub u64);

/// Identifier of one *execution* of an action.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ExecId(pub u64);

/// Metadata attached to each message so probes can attribute dispatches
/// to actions.
///
/// `Copy`-cheap: the hot loop hands this to probes on every dispatch, so
/// it carries an interned [`NameId`] rather than an owned `String`
/// (resolve it with [`crate::simulator::ProbeCtx::action_name`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageInfo {
    /// Execution this message belongs to.
    pub exec_id: ExecId,
    /// Action kind.
    pub action_uid: ActionUid,
    /// Interned action name (for reports).
    pub action_name: NameId,
    /// Index of this input event within the action.
    pub event_index: usize,
    /// Total number of input events in the action.
    pub num_events: usize,
}

impl MessageInfo {
    /// Returns whether this is the action's last input event.
    pub fn is_last(&self) -> bool {
        self.event_index + 1 == self.num_events
    }
}

/// One input-event message: metadata plus the compiled steps to run on
/// the main thread.
#[derive(Clone, Debug)]
pub struct Message {
    /// Attribution metadata.
    pub info: MessageInfo,
    /// Steps executed on the main thread.
    pub steps: Vec<Step>,
}

/// A user action as posted to the simulator.
#[derive(Clone, Debug)]
pub struct ActionRequest {
    /// Action kind identifier (App Injector UID).
    pub uid: ActionUid,
    /// Action name.
    pub name: String,
    /// Compiled steps of each input event, in delivery order.
    pub events: Vec<Vec<Step>>,
}

/// Summary of an action at its begin, handed to probes. `Copy`-cheap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActionInfo {
    /// Execution id.
    pub exec_id: ExecId,
    /// Action kind.
    pub uid: ActionUid,
    /// Interned action name.
    pub name: NameId,
    /// Number of input events.
    pub num_events: usize,
}

/// Completed record of one action execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ActionRecord {
    /// Execution id.
    pub exec_id: ExecId,
    /// Action kind.
    pub uid: ActionUid,
    /// Interned action name (resolve via the simulator's
    /// [`crate::NameTable`]; serialized as its `u32` id).
    pub name: NameId,
    /// When the action was posted to the message queue.
    pub posted: SimTime,
    /// When the first input event was dequeued.
    pub began: SimTime,
    /// When the action ended (main and render idle, or next action
    /// detected).
    pub ended: SimTime,
    /// Response time of each input event, in ns (dequeue to completion).
    pub event_responses: Vec<u64>,
}

impl ActionRecord {
    /// Returns the action's response time: the maximum input-event
    /// response (paper, Section 2.2).
    pub fn max_response_ns(&self) -> u64 {
        self.event_responses.iter().copied().max().unwrap_or(0)
    }

    /// Returns whether any input event exceeded `timeout_ns`.
    pub fn has_soft_hang(&self, timeout_ns: u64) -> bool {
        self.event_responses.iter().any(|&r| r > timeout_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(responses: Vec<u64>) -> ActionRecord {
        ActionRecord {
            exec_id: ExecId(1),
            uid: ActionUid(7),
            name: NameId(0),
            posted: SimTime::ZERO,
            began: SimTime::from_ms(1),
            ended: SimTime::from_ms(500),
            event_responses: responses,
        }
    }

    #[test]
    fn max_response_is_max_over_events() {
        let r = record(vec![40_000_000, 1_300_000_000, 90_000_000]);
        assert_eq!(r.max_response_ns(), 1_300_000_000);
    }

    #[test]
    fn empty_action_has_zero_response() {
        assert_eq!(record(vec![]).max_response_ns(), 0);
    }

    #[test]
    fn soft_hang_threshold_is_strict() {
        let r = record(vec![100_000_000]);
        assert!(!r.has_soft_hang(100_000_000));
        let r = record(vec![100_000_001]);
        assert!(r.has_soft_hang(100_000_000));
    }

    #[test]
    fn is_last_flags_final_event() {
        let info = MessageInfo {
            exec_id: ExecId(0),
            action_uid: ActionUid(0),
            action_name: NameId(0),
            event_index: 2,
            num_events: 3,
        };
        assert!(info.is_last());
        let info = MessageInfo {
            event_index: 1,
            ..info
        };
        assert!(!info.is_last());
    }
}
