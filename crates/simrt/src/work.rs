//! Work descriptions executed by simulated threads.
//!
//! App behaviour is compiled (by `hd-appmodel`) into flat sequences of
//! [`Step`]s. Timed steps occupy the CPU or block on I/O; instantaneous
//! steps manipulate the call stack or post work to other threads. A
//! [`MemProfile`] describes how a unit of CPU time translates into
//! memory-system and pipeline events, which is what ultimately drives the
//! performance-event counters Hang Doctor's S-Checker reads.

use crate::counters::{CounterBank, HwEvent};
use crate::frame::FrameId;
use crate::rng::{JitterFan, SimRng};
use crate::time::MILLIS;

/// Nominal core frequency used to derive cycle counts (2 GHz).
pub const CYCLES_PER_NS: f64 = 2.0;

/// How a unit of CPU time maps onto memory-system and pipeline events.
///
/// All rates are *expected values*; the simulator applies multiplicative
/// jitter when accruing so repeated executions differ realistically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemProfile {
    /// Instructions retired per nanosecond of CPU time.
    pub ips: f64,
    /// Minor page faults per millisecond of CPU time.
    pub minor_faults_per_ms: f64,
    /// Major page faults per millisecond of CPU time (usually ~0).
    pub major_faults_per_ms: f64,
    /// Last-level cache references per 1000 instructions.
    pub cache_refs_per_kinstr: f64,
    /// Fraction of cache references that miss.
    pub cache_miss_ratio: f64,
    /// Fraction of instructions that are data loads.
    pub load_frac: f64,
    /// Fraction of instructions that are data stores.
    pub store_frac: f64,
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Fraction of branches mispredicted.
    pub branch_miss_ratio: f64,
    /// TLB misses per 1000 instructions.
    pub tlb_miss_per_kinstr: f64,
    /// Fraction of cycles stalled (front+back end combined).
    pub stall_frac: f64,
}

impl MemProfile {
    /// Typical light UI bookkeeping on the main thread (listener code,
    /// layout measurement, view updates).
    pub fn ui() -> Self {
        MemProfile {
            ips: 2.4,
            minor_faults_per_ms: 0.8,
            major_faults_per_ms: 0.004,
            cache_refs_per_kinstr: 28.0,
            cache_miss_ratio: 0.06,
            load_frac: 0.26,
            store_frac: 0.12,
            branch_frac: 0.18,
            branch_miss_ratio: 0.03,
            tlb_miss_per_kinstr: 0.4,
            stall_frac: 0.25,
        }
    }

    /// Render-thread frame generation (display lists, GPU upload staging).
    pub fn render() -> Self {
        MemProfile {
            ips: 2.0,
            minor_faults_per_ms: 1.2,
            major_faults_per_ms: 0.005,
            cache_refs_per_kinstr: 40.0,
            cache_miss_ratio: 0.08,
            load_frac: 0.30,
            store_frac: 0.18,
            branch_frac: 0.12,
            branch_miss_ratio: 0.02,
            tlb_miss_per_kinstr: 0.6,
            stall_frac: 0.30,
        }
    }

    /// Compute-bound self-developed work (heavy loops, serialization).
    pub fn compute() -> Self {
        MemProfile {
            ips: 2.2,
            minor_faults_per_ms: 0.6,
            major_faults_per_ms: 0.0,
            cache_refs_per_kinstr: 18.0,
            cache_miss_ratio: 0.04,
            load_frac: 0.24,
            store_frac: 0.10,
            branch_frac: 0.22,
            branch_miss_ratio: 0.05,
            tlb_miss_per_kinstr: 0.3,
            stall_frac: 0.15,
        }
    }

    /// Memory-intensive work touching large fresh buffers (bitmap decode,
    /// HTML parsing, JSON serialization of large objects).
    pub fn memory_heavy() -> Self {
        MemProfile {
            ips: 1.0,
            minor_faults_per_ms: 10.0,
            major_faults_per_ms: 0.008,
            cache_refs_per_kinstr: 70.0,
            cache_miss_ratio: 0.22,
            load_frac: 0.34,
            store_frac: 0.22,
            branch_frac: 0.10,
            branch_miss_ratio: 0.04,
            tlb_miss_per_kinstr: 2.5,
            stall_frac: 0.55,
        }
    }

    /// Thin CPU shim around blocking I/O (syscall setup, buffer copies).
    pub fn io_stub() -> Self {
        MemProfile {
            ips: 0.6,
            minor_faults_per_ms: 8.0,
            major_faults_per_ms: 0.008,
            cache_refs_per_kinstr: 35.0,
            cache_miss_ratio: 0.12,
            load_frac: 0.30,
            store_frac: 0.16,
            branch_frac: 0.14,
            branch_miss_ratio: 0.03,
            tlb_miss_per_kinstr: 1.0,
            stall_frac: 0.40,
        }
    }

    /// Short kernel-ish bursts run by simulated system threads.
    pub fn system() -> Self {
        MemProfile {
            ips: 1.4,
            minor_faults_per_ms: 0.3,
            major_faults_per_ms: 0.0,
            cache_refs_per_kinstr: 25.0,
            cache_miss_ratio: 0.10,
            load_frac: 0.28,
            store_frac: 0.14,
            branch_frac: 0.16,
            branch_miss_ratio: 0.04,
            tlb_miss_per_kinstr: 0.8,
            stall_frac: 0.30,
        }
    }

    /// Accrues `cpu_ns` of execution under this profile into `bank`.
    ///
    /// Exact kernel-time accounting (task-clock/cpu-clock) is split from
    /// the jittered derived events: the clocks advance by `cpu_ns`
    /// exactly, then [`MemProfile::accrue_derived`] produces every PMU
    /// event from a single parent RNG draw. Zero-length segments return
    /// without touching the RNG, so the parent stream advances by exactly
    /// one draw per non-empty accrue call — the contract the fleet's
    /// thread-count-independence rests on.
    pub fn accrue(&self, bank: &mut CounterBank, cpu_ns: u64, rng: &mut SimRng) {
        if cpu_ns == 0 {
            return;
        }
        self.accrue_seeded(bank, cpu_ns, rng.next_u64());
    }

    /// [`MemProfile::accrue`] with the parent draw supplied by the
    /// caller. The simulator's pulse fast path uses this to fund a whole
    /// burst (timing jitter and accrual) from a single parent draw.
    pub fn accrue_seeded(&self, bank: &mut CounterBank, cpu_ns: u64, entropy: u64) {
        if cpu_ns == 0 {
            return;
        }
        let ns = cpu_ns as f64;
        bank.add(HwEvent::TaskClock, ns);
        bank.add(HwEvent::CpuClock, ns);
        self.accrue_derived(bank, ns, entropy);
    }

    /// Accrues the jittered derived PMU events for `ns` nanoseconds of
    /// CPU time, expanding `entropy` (one parent draw) through a
    /// [`JitterFan`]. Each derived event still gets an independent
    /// multiplicative jitter — quantized to 256 levels over the same
    /// ±12% band the per-event draws used — so per-sample correlation
    /// analysis sees the same spread at a fraction of the cost.
    fn accrue_derived(&self, bank: &mut CounterBank, ns: f64, entropy: u64) {
        let mut fan = JitterFan::new(entropy);
        let mut j = move || JITTER_TABLE[fan.next_u8() as usize];

        let instr = self.ips * ns * j();
        bank.add(HwEvent::Instructions, instr);

        let cycles = ns * CYCLES_PER_NS * j();
        bank.add(HwEvent::CpuCycles, cycles);
        bank.add(HwEvent::BusCycles, cycles / 8.0 * j());
        bank.add(
            HwEvent::StalledCyclesFrontend,
            cycles * self.stall_frac * 0.4 * j(),
        );
        bank.add(
            HwEvent::StalledCyclesBackend,
            cycles * self.stall_frac * 0.6 * j(),
        );

        let ms = ns / MILLIS as f64;
        let minor = self.minor_faults_per_ms * ms * j();
        let major = self.major_faults_per_ms * ms * j();
        bank.add(HwEvent::MinorFaults, minor);
        bank.add(HwEvent::MajorFaults, major);
        bank.add(HwEvent::PageFaults, minor + major);

        let refs = instr / 1000.0 * self.cache_refs_per_kinstr * j();
        let misses = refs * self.cache_miss_ratio * j();
        bank.add(HwEvent::CacheReferences, refs);
        bank.add(HwEvent::CacheMisses, misses);

        let loads = instr * self.load_frac * j();
        let stores = instr * self.store_frac * j();
        bank.add(HwEvent::L1DcacheLoads, loads);
        bank.add(HwEvent::L1DcacheStores, stores);
        bank.add(
            HwEvent::L1DcacheLoadMisses,
            loads * self.cache_miss_ratio * 0.5 * j(),
        );
        bank.add(
            HwEvent::L1DcacheStoreMisses,
            stores * self.cache_miss_ratio * 0.4 * j(),
        );
        bank.add(HwEvent::RawL1Dcache, (loads + stores) * j());
        bank.add(HwEvent::RawL1DcacheRefill, misses * 0.9 * j());
        bank.add(HwEvent::RawL2Dcache, refs * 0.8 * j());
        bank.add(HwEvent::RawL2DcacheRefill, misses * 0.7 * j());

        let icache = instr / 4.0 * j();
        bank.add(HwEvent::L1IcacheLoads, icache);
        bank.add(HwEvent::L1IcacheLoadMisses, icache * 0.01 * j());
        bank.add(HwEvent::RawL1Icache, icache * j());
        bank.add(HwEvent::RawL1IcacheRefill, icache * 0.01 * j());

        bank.add(HwEvent::LlcLoads, refs * 0.6 * j());
        bank.add(HwEvent::LlcLoadMisses, misses * 0.6 * j());
        bank.add(HwEvent::LlcStores, refs * 0.25 * j());
        bank.add(HwEvent::LlcStoreMisses, misses * 0.25 * j());

        let tlb_misses = instr / 1000.0 * self.tlb_miss_per_kinstr * j();
        bank.add(HwEvent::DtlbLoads, loads * j());
        bank.add(HwEvent::DtlbLoadMisses, tlb_misses * 0.7 * j());
        bank.add(HwEvent::ItlbLoads, icache * j());
        bank.add(HwEvent::ItlbLoadMisses, tlb_misses * 0.3 * j());
        bank.add(HwEvent::RawL1Dtlb, loads * j());
        bank.add(HwEvent::RawL1DtlbRefill, tlb_misses * 0.7 * j());
        bank.add(HwEvent::RawL1Itlb, icache * j());
        bank.add(HwEvent::RawL1ItlbRefill, tlb_misses * 0.3 * j());

        let branches = instr * self.branch_frac * j();
        bank.add(HwEvent::BranchInstructions, branches);
        bank.add(HwEvent::BranchLoads, branches * j());
        let bmiss = branches * self.branch_miss_ratio * j();
        bank.add(HwEvent::BranchMisses, bmiss);
        bank.add(HwEvent::BranchLoadMisses, bmiss * j());

        bank.add(HwEvent::RawBusAccess, refs * 0.5 * j());
        bank.add(HwEvent::RawMemAccess, (loads + stores) * 1.05 * j());

        // Rare correctness-path events stay near zero on a healthy app:
        // a 16-bit fan slice against a probability threshold replaces the
        // old full `chance` draw.
        let mut fan16 = JitterFan::new(entropy ^ 0xA5A5_A5A5_A5A5_A5A5);
        if rare_hit(fan16.next_u16(), ms * 0.001) {
            bank.add(HwEvent::AlignmentFaults, 1.0);
        }
        if rare_hit(fan16.next_u16(), ms * 0.0005) {
            bank.add(HwEvent::EmulationFaults, 1.0);
        }
    }
}

/// Multiplicative jitter band applied to every derived PMU event.
const JITTER_SPREAD: f64 = 0.12;

/// 256 evenly spaced multiplicative jitter factors over
/// `[1 - JITTER_SPREAD, 1 + JITTER_SPREAD]`, centred per bucket so the
/// table mean is exactly 1. Indexed by one fan byte per derived event:
/// a load from this (2 KiB, L1-resident) table replaces a full RNG draw
/// plus float-range conversion per event.
static JITTER_TABLE: [f64; 256] = {
    let mut table = [0.0; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = 1.0 - JITTER_SPREAD + 2.0 * JITTER_SPREAD * (i as f64 + 0.5) / 256.0;
        i += 1;
    }
    table
};

/// Returns whether a 16-bit fan slice lands under probability `p`.
#[inline]
fn rare_hit(slice: u16, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    (slice as f64) < p * 65536.0
}

/// One step of a compiled work item.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// Push a frame onto the executing thread's call stack (free).
    Push(FrameId),
    /// Pop the top frame (free).
    Pop,
    /// Occupy the CPU for `ns` nanoseconds under `profile`.
    Cpu {
        /// CPU time consumed.
        ns: u64,
        /// Event-generation profile for this work.
        profile: MemProfile,
    },
    /// Block off-CPU for `ns` nanoseconds (disk, camera HAL...).
    Io {
        /// Wall time spent blocked.
        ns: u64,
    },
    /// Block on the network, transferring `bytes` (footnote 2 of the
    /// paper: network on the main thread is a well-known hang class,
    /// detectable by monitoring the main thread's network activity).
    NetIo {
        /// Wall time spent blocked.
        ns: u64,
        /// Bytes transferred (accounted per thread).
        bytes: u64,
    },
    /// Enqueue `frames` frames of `frame_ns` each on the render thread.
    PostRender {
        /// Number of frames handed to the render thread.
        frames: u32,
        /// CPU cost of each frame on the render thread.
        frame_ns: u64,
    },
    /// Enqueue a task on a background worker thread.
    PostWorker(Vec<Step>),
    /// Submit a task to a bounded executor (pool or serial queue). The
    /// task runs when one of the executor's threads becomes free; `token`
    /// names the resulting future within the posting work item so a later
    /// [`Step::JoinTask`] can wait on it.
    PostTask {
        /// Executor index (from [`crate::Simulator::add_executor`]).
        executor: u32,
        /// Future handle, scoped to the posting work item.
        token: u32,
        /// The task body executed on the executor thread.
        steps: Vec<Step>,
    },
    /// Block until the task posted under `token` completes (a
    /// future-`get()` wait edge). Instant if the task already finished;
    /// otherwise the thread blocks with no timed wake and is woken by the
    /// task's completion event.
    JoinTask {
        /// Future handle of a prior [`Step::PostTask`] in the same item.
        token: u32,
    },
}

impl Step {
    /// Returns the CPU time this step itself consumes on the executing
    /// thread (posted work is excluded).
    pub fn cpu_ns(&self) -> u64 {
        match self {
            Step::Cpu { ns, .. } => *ns,
            _ => 0,
        }
    }

    /// Returns the blocked (off-CPU) time of this step.
    pub fn io_ns(&self) -> u64 {
        match self {
            Step::Io { ns } | Step::NetIo { ns, .. } => *ns,
            _ => 0,
        }
    }

    /// Returns whether this step always completes instantaneously.
    /// `JoinTask` is excluded: it blocks for a data-dependent duration
    /// (zero if the joined task already finished).
    pub fn is_instant(&self) -> bool {
        !matches!(
            self,
            Step::Cpu { .. } | Step::Io { .. } | Step::NetIo { .. } | Step::JoinTask { .. }
        )
    }
}

/// Total busy (CPU) and blocked (I/O) time of a step sequence on the
/// executing thread, ignoring scheduling delays and posted work.
pub fn nominal_duration(steps: &[Step]) -> (u64, u64) {
    let cpu = steps.iter().map(Step::cpu_ns).sum();
    let io = steps.iter().map(Step::io_ns).sum();
    (cpu, io)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accrue_tracks_task_clock_exactly() {
        let mut bank = CounterBank::new();
        let mut rng = SimRng::seed_from_u64(1);
        MemProfile::ui().accrue(&mut bank, 5 * MILLIS, &mut rng);
        assert_eq!(bank.get(HwEvent::TaskClock), (5 * MILLIS) as f64);
        assert_eq!(bank.get(HwEvent::CpuClock), (5 * MILLIS) as f64);
    }

    #[test]
    fn accrue_zero_is_noop() {
        let mut bank = CounterBank::new();
        let mut rng = SimRng::seed_from_u64(1);
        MemProfile::ui().accrue(&mut bank, 0, &mut rng);
        assert_eq!(bank.get(HwEvent::Instructions), 0.0);
    }

    #[test]
    fn accrue_consumes_exactly_one_draw() {
        // The v2 kernel's determinism contract: one parent draw per
        // non-empty accrue, regardless of profile or duration.
        for (profile, ns) in [
            (MemProfile::ui(), 100),
            (MemProfile::memory_heavy(), 50 * MILLIS),
            (MemProfile::system(), 350_000),
        ] {
            let mut rng = SimRng::seed_from_u64(11);
            let mut witness = SimRng::seed_from_u64(11);
            witness.next_u64();
            let expected = witness.next_u64();
            let mut bank = CounterBank::new();
            profile.accrue(&mut bank, ns, &mut rng);
            assert_eq!(rng.next_u64(), expected, "profile consumed != 1 draw");
        }
    }

    #[test]
    fn accrue_zero_consumes_no_draw() {
        let mut rng = SimRng::seed_from_u64(12);
        let mut witness = SimRng::seed_from_u64(12);
        let mut bank = CounterBank::new();
        MemProfile::ui().accrue(&mut bank, 0, &mut rng);
        assert_eq!(rng.next_u64(), witness.next_u64());
    }

    #[test]
    fn jitter_table_is_centered_and_banded() {
        let mean: f64 = JITTER_TABLE.iter().sum::<f64>() / 256.0;
        assert!((mean - 1.0).abs() < 1e-12, "table mean {mean}");
        for &f in &JITTER_TABLE {
            assert!(f > 1.0 - JITTER_SPREAD && f < 1.0 + JITTER_SPREAD);
        }
    }

    #[test]
    fn memory_heavy_faults_dominate_ui() {
        let mut heavy = CounterBank::new();
        let mut light = CounterBank::new();
        let mut rng = SimRng::seed_from_u64(2);
        MemProfile::memory_heavy().accrue(&mut heavy, 100 * MILLIS, &mut rng);
        MemProfile::ui().accrue(&mut light, 100 * MILLIS, &mut rng);
        assert!(heavy.get(HwEvent::PageFaults) > 3.0 * light.get(HwEvent::PageFaults));
        assert!(heavy.get(HwEvent::CacheMisses) > light.get(HwEvent::CacheMisses));
    }

    #[test]
    fn page_faults_are_minor_plus_major() {
        let mut bank = CounterBank::new();
        let mut rng = SimRng::seed_from_u64(3);
        MemProfile::io_stub().accrue(&mut bank, 50 * MILLIS, &mut rng);
        let total = bank.get(HwEvent::PageFaults);
        let parts = bank.get(HwEvent::MinorFaults) + bank.get(HwEvent::MajorFaults);
        assert!((total - parts).abs() < 1e-6);
    }

    #[test]
    fn jitter_makes_repeats_differ() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut a = CounterBank::new();
        let mut b = CounterBank::new();
        MemProfile::compute().accrue(&mut a, 10 * MILLIS, &mut rng);
        MemProfile::compute().accrue(&mut b, 10 * MILLIS, &mut rng);
        assert_ne!(a.get(HwEvent::Instructions), b.get(HwEvent::Instructions));
    }

    #[test]
    fn nominal_duration_sums_timed_steps() {
        let steps = vec![
            Step::Push(FrameId(0)),
            Step::Cpu {
                ns: 100,
                profile: MemProfile::ui(),
            },
            Step::Io { ns: 40 },
            Step::PostRender {
                frames: 2,
                frame_ns: 10,
            },
            Step::Pop,
        ];
        assert_eq!(nominal_duration(&steps), (100, 40));
        assert!(steps[0].is_instant());
        assert!(!steps[1].is_instant());
        assert!(!steps[2].is_instant());
        assert!(steps[3].is_instant());
    }
}
