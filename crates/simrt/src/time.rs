//! Virtual time for the discrete-event simulation.
//!
//! All simulated time is kept in nanoseconds since simulated boot. The
//! simulator never reads the host clock, so runs are fully deterministic.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// One microsecond in nanoseconds.
pub const MICROS: u64 = 1_000;
/// One millisecond in nanoseconds.
pub const MILLIS: u64 = 1_000_000;
/// One second in nanoseconds.
pub const SECONDS: u64 = 1_000_000_000;

/// An instant on the simulated timeline, in nanoseconds since boot.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulated boot instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the instant `ms` milliseconds after boot.
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * MILLIS)
    }

    /// Returns the instant `us` microseconds after boot.
    pub fn from_us(us: u64) -> Self {
        SimTime(us * MICROS)
    }

    /// Returns the instant `s` seconds after boot.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * SECONDS)
    }

    /// Returns the raw nanosecond count.
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / MILLIS as f64
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECONDS as f64
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 / MILLIS;
        let frac = (self.0 % MILLIS) / 1_000;
        write!(f, "{ms}.{frac:03}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_ms(5).as_ns(), 5 * MILLIS);
        assert_eq!(SimTime::from_us(7).as_ns(), 7 * MICROS);
        assert_eq!(SimTime::from_secs(2).as_ns(), 2 * SECONDS);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_ms(10);
        assert_eq!((t + MILLIS).as_ns(), 11 * MILLIS);
        assert_eq!(t - SimTime::from_ms(4), 6 * MILLIS);
        // Subtraction saturates instead of panicking.
        assert_eq!(SimTime::from_ms(1) - SimTime::from_ms(2), 0);
        assert_eq!(SimTime::from_ms(2).since(SimTime::from_ms(5)), 0);
    }

    #[test]
    fn fractional_views() {
        let t = SimTime::from_us(1500);
        assert!((t.as_ms_f64() - 1.5).abs() < 1e-9);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_is_millisecond_based() {
        assert_eq!(SimTime::from_us(1500).to_string(), "1.500ms");
        assert_eq!(SimTime::ZERO.to_string(), "0.000ms");
    }

    #[test]
    fn ordering_follows_raw_ns() {
        assert!(SimTime::from_ms(1) < SimTime::from_ms(2));
        assert!(SimTime(1) > SimTime::ZERO);
    }
}
