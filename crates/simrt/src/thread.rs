//! Simulated threads and their execution state.
//!
//! Every app process has exactly one *main* thread (runs the Looper that
//! dispatches input events), one *render* thread (consumes frames posted
//! by UI work, Android ≥ 5.0), and a pool of background *worker* threads.
//! Additional *system* threads model the rest of the device: they wake
//! periodically, run short bursts, and preempt app threads — which is
//! what makes context-switch counts meaningful.

use std::collections::VecDeque;

use crate::counters::CounterBank;
use crate::frame::FrameId;
use crate::looper::MessageInfo;
use crate::time::SimTime;
use crate::work::{MemProfile, Step};

/// Dense thread identifier within one simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub usize);

/// Role of a simulated thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadKind {
    /// The app's main (UI) thread.
    Main,
    /// The app's render thread.
    Render,
    /// A background worker owned by the app.
    Worker,
    /// A device/system thread outside the app.
    System,
}

/// Scheduling state of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Executing on the given core.
    Running {
        /// Core index.
        core: usize,
    },
    /// Runnable, waiting for a core.
    Ready,
    /// Off-CPU until a wake event (I/O completion or periodic sleep).
    Blocked,
    /// Idle: no work available from its source.
    Waiting,
}

/// The kind of work item currently executing on a thread.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkItem {
    /// An input-event message dispatched by the main thread's Looper.
    Message(MessageInfo),
    /// One render frame.
    RenderFrame,
    /// A background task posted with [`Step::PostWorker`].
    WorkerTask,
    /// A task submitted to a bounded executor with [`Step::PostTask`];
    /// carries the global task id so completion can wake join waiters.
    ExecutorTask {
        /// Global task id in the simulator's task table.
        task: u64,
    },
    /// A periodic system burst.
    SystemBurst,
}

/// Where a thread pulls its next work item from.
#[derive(Clone, Debug)]
pub enum WorkSource {
    /// Pulls [`crate::looper::Message`]s from the process message queue.
    MainLooper,
    /// Pulls frames from the render queue.
    RenderQueue,
    /// Pulls tasks from the shared worker queue.
    WorkerQueue,
    /// Pulls tasks from a bounded executor's submission queue.
    ExecutorQueue {
        /// Executor index in the simulator's executor table.
        executor: usize,
    },
    /// Self-generates periodic bursts (system threads).
    Pulse {
        /// Nominal wake period.
        period_ns: u64,
        /// Multiplicative jitter applied to each period.
        jitter: f64,
        /// Nominal burst CPU time per wake.
        burst_ns: u64,
        /// Event profile of the burst.
        profile: MemProfile,
    },
}

/// In-flight execution state of one work item.
#[derive(Clone, Debug)]
pub struct ExecState {
    /// Remaining steps; the front is current.
    pub steps: VecDeque<Step>,
    /// Current call stack (top is last).
    pub stack: Vec<FrameId>,
    /// What kind of item this is.
    pub item: WorkItem,
    /// When execution of this item began (dequeue time for messages).
    pub began: SimTime,
    /// Future handles minted by [`Step::PostTask`] within this item:
    /// `(token, task_id)` pairs, scoped to the item so tokens from
    /// different messages never collide.
    pub handles: Vec<(u32, u64)>,
}

impl ExecState {
    /// Creates execution state for a fresh item.
    pub fn new(steps: Vec<Step>, item: WorkItem, began: SimTime) -> Self {
        ExecState {
            steps: steps.into(),
            stack: Vec::new(),
            item,
            began,
            handles: Vec::new(),
        }
    }

    /// Creates execution state reusing an already-allocated deque (the
    /// simulator recycles burst/frame buffers to keep the event loop
    /// allocation-free).
    pub fn from_deque(steps: VecDeque<Step>, item: WorkItem, began: SimTime) -> Self {
        ExecState {
            steps,
            stack: Vec::new(),
            item,
            began,
            handles: Vec::new(),
        }
    }
}

/// One simulated thread.
#[derive(Clone, Debug)]
pub struct SimThread {
    /// Identifier (index into the simulator's thread table).
    pub id: ThreadId,
    /// Human-readable name (e.g. `main`, `RenderThread`).
    pub name: String,
    /// Role.
    pub kind: ThreadKind,
    /// Scheduling priority; higher runs first.
    pub priority: u8,
    /// Current scheduling state.
    pub state: ThreadState,
    /// Ground-truth performance counters.
    pub counters: CounterBank,
    /// Bytes this thread transferred over the network.
    pub net_bytes: u64,
    /// Core the thread last ran on (for migration counting).
    pub last_core: Option<usize>,
    /// Work item currently being executed, if any.
    pub exec: Option<ExecState>,
    /// Where the next item comes from.
    pub source: WorkSource,
    /// If set, the thread may only run on this core (system threads are
    /// pinned like IRQ/kworker threads on a phone).
    pub affinity: Option<usize>,
}

impl SimThread {
    /// Creates a thread in the [`ThreadState::Waiting`] state.
    pub fn new(
        id: ThreadId,
        name: impl Into<String>,
        kind: ThreadKind,
        priority: u8,
        source: WorkSource,
    ) -> Self {
        SimThread {
            id,
            name: name.into(),
            kind,
            priority,
            state: ThreadState::Waiting,
            counters: CounterBank::new(),
            net_bytes: 0,
            last_core: None,
            exec: None,
            source,
            affinity: None,
        }
    }

    /// Returns the current call stack (empty when idle).
    pub fn stack(&self) -> &[FrameId] {
        self.exec
            .as_ref()
            .map(|e| e.stack.as_slice())
            .unwrap_or(&[])
    }

    /// Returns whether this thread belongs to the app process.
    pub fn is_app(&self) -> bool {
        !matches!(self.kind, ThreadKind::System)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_thread_is_idle() {
        let t = SimThread::new(
            ThreadId(0),
            "main",
            ThreadKind::Main,
            2,
            WorkSource::MainLooper,
        );
        assert_eq!(t.state, ThreadState::Waiting);
        assert!(t.stack().is_empty());
        assert!(t.exec.is_none());
        assert!(t.is_app());
    }

    #[test]
    fn system_threads_are_not_app() {
        let t = SimThread::new(
            ThreadId(9),
            "kworker/3",
            ThreadKind::System,
            3,
            WorkSource::Pulse {
                period_ns: 1,
                jitter: 0.0,
                burst_ns: 1,
                profile: MemProfile::system(),
            },
        );
        assert!(!t.is_app());
    }

    #[test]
    fn exec_state_exposes_stack() {
        let mut e = ExecState::new(vec![Step::Pop], WorkItem::RenderFrame, SimTime::ZERO);
        e.stack.push(FrameId(3));
        let mut t = SimThread::new(
            ThreadId(1),
            "RenderThread",
            ThreadKind::Render,
            2,
            WorkSource::RenderQueue,
        );
        t.exec = Some(e);
        assert_eq!(t.stack(), &[FrameId(3)]);
    }
}
