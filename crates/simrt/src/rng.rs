//! Seeded randomness for the simulation.
//!
//! Every stochastic decision in the simulator flows through [`SimRng`], a
//! thin wrapper over [`rand::rngs::StdRng`] that adds the handful of
//! distributions the runtime model needs (jitter factors, approximate
//! normals). Seeding the simulator therefore fixes the entire run.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic random source used throughout the simulation.
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator from this one.
    ///
    /// Used to give each app/user trace its own stream so that adding a
    /// probe or extra sampling does not perturb unrelated draws.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.random::<u64>())
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.random_range(lo..hi)
    }

    /// Returns a uniform integer in `[lo, hi]`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range(lo..=hi)
    }

    /// Returns a multiplicative jitter factor in `[1 - j, 1 + j]`.
    ///
    /// `j` is clamped to `[0, 0.95]` so the factor stays positive.
    pub fn jitter(&mut self, j: f64) -> f64 {
        let j = j.clamp(0.0, 0.95);
        self.uniform_f64(1.0 - j, 1.0 + j)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.random::<f64>() < p
    }

    /// Draws an approximately normal sample via the Box-Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Box-Muller: two independent uniforms to one normal deviate.
        let u1: f64 = self.inner.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.inner.random();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Draws a positive log-normal-ish factor with the given spread.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        self.normal(0.0, sigma).exp()
    }

    /// Returns a uniformly chosen index below `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.inner.random_range(0..len)
    }

    /// Returns a raw 64-bit draw (for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }
}

/// Fans one 64-bit draw out into many small independent decisions.
///
/// The accrual kernel used to draw one full RNG value per derived PMU
/// event (~40 draws per [`crate::work::MemProfile::accrue`] call), which
/// pinned the fleet's hot loop on RNG throughput. A `JitterFan` instead
/// takes a single [`SimRng`] draw as its seed and expands it with
/// SplitMix64, handing out 8- and 16-bit slices of each expansion. The
/// parent stream advances by exactly one draw per accrue call no matter
/// how many derived events are produced, so scheduler-level determinism
/// never depends on the event mix.
#[derive(Debug)]
pub struct JitterFan {
    state: u64,
    bits: u64,
    left: u32,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl JitterFan {
    /// Creates a fan from one parent draw.
    #[inline]
    pub fn new(seed: u64) -> JitterFan {
        JitterFan {
            state: seed,
            bits: 0,
            left: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        self.bits = splitmix64(&mut self.state);
        self.left = 64;
    }

    /// Returns the next 8 bits of the expansion.
    #[inline]
    pub fn next_u8(&mut self) -> u8 {
        if self.left < 8 {
            self.refill();
        }
        let v = self.bits as u8;
        self.bits >>= 8;
        self.left -= 8;
        v
    }

    /// Returns the next 16 bits of the expansion.
    #[inline]
    pub fn next_u16(&mut self) -> u16 {
        if self.left < 16 {
            self.refill();
        }
        let v = self.bits as u16;
        self.bits >>= 16;
        self.left -= 16;
        v
    }

    /// Returns the next 32 bits of the expansion.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.left < 32 {
            self.refill();
        }
        let v = self.bits as u32;
        self.bits >>= 32;
        self.left -= 32;
        v
    }

    /// Returns a multiplicative jitter factor in `[1 - j, 1 + j)` from
    /// the next 32 bits (the fan analog of [`SimRng::jitter`]).
    #[inline]
    pub fn jitter(&mut self, j: f64) -> f64 {
        let j = j.clamp(0.0, 0.95);
        1.0 - j + 2.0 * j * (self.next_u32() as f64 / 4_294_967_296.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.jitter(0.2);
            assert!((0.8..=1.2).contains(&f), "jitter {f} out of band");
        }
    }

    #[test]
    fn jitter_clamps_extreme_spread() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(rng.jitter(5.0) > 0.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn jitter_fan_is_deterministic_per_seed() {
        let mut a = JitterFan::new(99);
        let mut b = JitterFan::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u8(), b.next_u8());
            assert_eq!(a.next_u16(), b.next_u16());
        }
        let mut c = JitterFan::new(100);
        let mut d = JitterFan::new(99);
        let differs = (0..64).filter(|_| d.next_u8() != c.next_u8()).count();
        assert!(differs > 0, "different seeds must diverge");
    }

    #[test]
    fn jitter_fan_bytes_are_roughly_uniform() {
        // 256 buckets x 4096 samples: every bucket must be populated and
        // no bucket may be wildly off the expected 16 hits.
        let mut fan = JitterFan::new(7);
        let mut hist = [0u32; 256];
        for _ in 0..4096 {
            hist[fan.next_u8() as usize] += 1;
        }
        assert!(hist.iter().all(|&h| h > 0), "empty bucket");
        assert!(hist.iter().all(|&h| h < 64), "overfull bucket");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::seed_from_u64(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }
}
