//! # hd-simrt — simulated Android-like app runtime
//!
//! This crate is the hardware/OS substrate of the Hang Doctor
//! reproduction. It provides a deterministic discrete-event simulation of
//! the environment Hang Doctor observes on a real phone:
//!
//! * a virtual nanosecond clock ([`time::SimTime`]);
//! * a multi-core preemptive scheduler with per-thread kernel event
//!   accounting (context switches, task clock, migrations, faults);
//! * a memory/pipeline model deriving the PMU events ([`work::MemProfile`]);
//! * an app process with a main thread running a Looper/`MessageQueue`,
//!   a render thread, and background workers ([`simulator::Simulator`]);
//! * pinned per-core system threads that model the rest of the device;
//! * a probe seam ([`probe::Probe`]) exposing exactly the observation
//!   channels Hang Doctor uses: `Looper.setMessageLogging`-style dispatch
//!   hooks, per-thread performance counters, main-thread stack samples,
//!   and timers — plus cost charging so monitoring overhead is measurable.
//!
//! Everything is seeded and single-threaded: the same configuration and
//! inputs always produce the same timeline.

pub mod counters;
pub mod device;
pub mod frame;
pub mod looper;
pub mod name;
pub mod probe;
pub mod recorder;
pub mod rng;
pub mod simulator;
pub mod thread;
pub mod time;
pub mod work;

pub use counters::{CounterBank, HwEvent, NUM_EVENTS, NUM_KERNEL_EVENTS, PMU_REGISTERS};
pub use device::DeviceProfile;
pub use frame::{Frame, FrameId, FrameTable};
pub use looper::{
    ActionInfo, ActionRecord, ActionRequest, ActionUid, ExecId, Message, MessageInfo,
};
pub use name::{NameId, NameTable};
pub use probe::{MonitorCost, Probe};
pub use recorder::{DispatchSpan, Timeline, TimelineRecorder};
pub use rng::{JitterFan, SimRng};
pub use simulator::{ProbeCtx, RunSummary, SimConfig, Simulator, TaskRecord, TaskStatus};
pub use thread::{SimThread, ThreadId, ThreadKind, ThreadState};
pub use time::{SimTime, MICROS, MILLIS, SECONDS};
pub use work::{nominal_duration, MemProfile, Step};
