//! The discrete-event simulator: scheduler, event queue, and probe seam.
//!
//! One [`Simulator`] hosts a single app process (main + render + worker
//! threads) plus per-core pinned system threads that model the rest of
//! the device. User actions are scheduled onto the timeline, executed on
//! the main thread in message-queue order, and observed by installed
//! [`Probe`]s exactly the way Hang Doctor observes a real app: dispatch
//! begin/end hooks, per-thread performance counters, stack samples, and
//! timers.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use crate::counters::HwEvent;
use crate::frame::{Frame, FrameId, FrameTable};
use crate::looper::{
    ActionInfo, ActionRecord, ActionRequest, ActionUid, ExecId, Message, MessageInfo,
};
use crate::name::{NameId, NameTable};
use crate::probe::{MonitorCost, Probe};
use crate::rng::{JitterFan, SimRng};
use crate::thread::{
    ExecState, SimThread, ThreadId, ThreadKind, ThreadState, WorkItem, WorkSource,
};
use crate::time::{SimTime, MICROS, MILLIS, SECONDS};
use crate::work::{MemProfile, Step};

/// Static configuration of a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Seed for the run's random stream.
    pub seed: u64,
    /// Number of CPU cores.
    pub cores: usize,
    /// Round-robin timeslice.
    pub timeslice_ns: u64,
    /// Nominal wake period of each per-core system thread.
    pub system_period_ns: u64,
    /// Nominal CPU burst of each system wake.
    pub system_burst_ns: u64,
    /// Number of background worker threads in the app.
    pub workers: usize,
    /// Hard horizon: the run stops (truncated) past this time.
    pub max_sim_ns: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            cores: 2,
            timeslice_ns: 10 * MILLIS,
            system_period_ns: 6 * MILLIS,
            system_burst_ns: 350 * MICROS,
            workers: 2,
            max_sim_ns: 48 * 3600 * SECONDS,
        }
    }
}

/// Result of [`Simulator::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Simulated time when the run stopped.
    pub ended_at: SimTime,
    /// Whether the hard horizon truncated the run.
    pub truncated: bool,
    /// Number of completed action executions.
    pub actions_completed: usize,
}

/// Domain separation between a pulse's timing jitter and its accrual
/// entropy, both funded by the same parent draw.
const PULSE_ACCRUE_SALT: u64 = 0x9D0B_CB35_5BD1_E995;

/// Priorities: workers < main/render < system.
const PRIO_WORKER: u8 = 1;
const PRIO_APP: u8 = 2;
const PRIO_SYSTEM: u8 = 3;
const NUM_PRIOS: usize = 4;

/// An [`ActionRequest`] with its name already interned, as carried on
/// the event queue (the hot path never touches the `String` again).
#[derive(Debug)]
struct ArrivedRequest {
    uid: ActionUid,
    name: NameId,
    events: Vec<Vec<Step>>,
}

#[derive(Debug)]
enum Ev {
    /// A running thread's segment-or-slice boundary on `core`.
    Core { core: usize, gen: u64 },
    /// Wake a blocked thread (I/O done or system-pulse period).
    Wake { tid: usize },
    /// A probe timer fires.
    ProbeTimer { probe: usize, token: u64 },
}

struct QEntry {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the BinaryHeap pops the earliest (time, seq) first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct CoreSlot {
    running: Option<usize>,
    gen: u64,
    slice_end: SimTime,
    accrue_from: SimTime,
    /// Set while a system-pulse burst occupies the core with its CPU
    /// time already accrued at wake (the pulse fast path); incremental
    /// accrual must skip the core until the burst's Core event frees it.
    preaccrued: bool,
    /// Next wake period of the pulse pinned to this core, drawn at wake
    /// together with the burst length so one parent draw funds the whole
    /// pulse cycle.
    pulse_period: u64,
}

#[derive(Debug)]
struct ActiveAction {
    exec_id: ExecId,
    uid: ActionUid,
    name: NameId,
    posted: SimTime,
    began: Option<SimTime>,
    responses: Vec<u64>,
    num_events: usize,
    events_done: usize,
    finished_main: Option<SimTime>,
}

#[derive(Debug)]
enum Notice {
    ActionBegin(ActionInfo),
    DispatchBegin(MessageInfo),
    DispatchEnd(MessageInfo, u64),
    ActionEnd(ActionRecord),
    Timer { probe: usize, token: u64 },
}

/// Lifecycle state of a task submitted to a bounded executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskStatus {
    /// Waiting in the executor's submission queue.
    Queued,
    /// Executing on the given thread.
    Running {
        /// The executor thread running the task.
        tid: ThreadId,
    },
    /// Finished; joins on it complete instantly.
    Done,
}

/// Public record of one executor task (task id == index in
/// [`Simulator::task_records`]), exposed for tests and probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskRecord {
    /// Executor the task was submitted to.
    pub executor: usize,
    /// Final (or current) lifecycle state.
    pub status: TaskStatus,
    /// When [`Step::PostTask`] ran (the submit edge).
    pub posted: SimTime,
    /// When an executor thread dequeued and started it.
    pub started: Option<SimTime>,
    /// When its last step completed.
    pub finished: Option<SimTime>,
}

/// Internal state of one executor task.
#[derive(Debug)]
struct TaskState {
    executor: usize,
    status: TaskStatus,
    /// Body steps, present until an executor thread takes the task.
    steps: Option<Vec<Step>>,
    posted: SimTime,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    /// Threads blocked in [`Step::JoinTask`] on this task, woken at
    /// completion.
    waiters: Vec<usize>,
}

/// A bounded executor: a FIFO submission queue drained by a fixed set
/// of dedicated threads (`width == 1` models a serial executor).
#[derive(Debug)]
struct ExecutorState {
    queue: VecDeque<u64>,
    thread_tids: Vec<usize>,
}

pub(crate) struct World {
    cfg: SimConfig,
    now: SimTime,
    queue: BinaryHeap<QEntry>,
    seq: u64,
    threads: Vec<SimThread>,
    ready: [VecDeque<usize>; NUM_PRIOS],
    cores: Vec<CoreSlot>,
    main_q: VecDeque<Message>,
    render_q: VecDeque<u64>,
    worker_q: VecDeque<Vec<Step>>,
    actions: VecDeque<ActiveAction>,
    /// User actions staged before the run, sorted by `(at, seq)` when
    /// `run` starts. Keeping them out of the transient-event heap keeps
    /// that heap a handful of entries deep for the whole run.
    arrivals: VecDeque<(SimTime, u64, ArrivedRequest)>,
    frames: Arc<FrameTable>,
    names: NameTable,
    rng: SimRng,
    monitor: MonitorCost,
    records: Vec<ActionRecord>,
    /// Recycled step buffers for render frames, so the steady-state
    /// event loop never touches the allocator.
    spare_steps: Vec<VecDeque<Step>>,
    notices: Vec<Notice>,
    /// Set once a probe is installed; when clear, the hot loop skips
    /// notice construction entirely (including the per-action
    /// `ActionRecord` clone).
    notices_enabled: bool,
    pending_arrivals: usize,
    pending_probe_timers: usize,
    next_exec: u64,
    main_tid: usize,
    render_tid: usize,
    worker_tids: Vec<usize>,
    /// Bounded executors added with [`Simulator::add_executor`].
    executors: Vec<ExecutorState>,
    /// Global task table; a task's id is its index here.
    tasks: Vec<TaskState>,
}

impl World {
    fn new(cfg: SimConfig, frames: Arc<FrameTable>) -> World {
        let mut threads = Vec::new();
        let main_tid = threads.len();
        threads.push(SimThread::new(
            ThreadId(main_tid),
            "main",
            ThreadKind::Main,
            PRIO_APP,
            WorkSource::MainLooper,
        ));
        let render_tid = threads.len();
        threads.push(SimThread::new(
            ThreadId(render_tid),
            "RenderThread",
            ThreadKind::Render,
            PRIO_APP,
            WorkSource::RenderQueue,
        ));
        let mut worker_tids = Vec::new();
        for i in 0..cfg.workers {
            let tid = threads.len();
            worker_tids.push(tid);
            threads.push(SimThread::new(
                ThreadId(tid),
                format!("AsyncTask #{}", i + 1),
                ThreadKind::Worker,
                PRIO_WORKER,
                WorkSource::WorkerQueue,
            ));
        }
        let mut world = World {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            threads,
            ready: Default::default(),
            cores: vec![CoreSlot::default(); cfg.cores],
            main_q: VecDeque::new(),
            render_q: VecDeque::new(),
            worker_q: VecDeque::new(),
            actions: VecDeque::new(),
            arrivals: VecDeque::new(),
            frames,
            names: NameTable::new(),
            rng: SimRng::seed_from_u64(cfg.seed),
            monitor: MonitorCost::default(),
            records: Vec::new(),
            spare_steps: Vec::new(),
            notices: Vec::new(),
            notices_enabled: false,
            pending_arrivals: 0,
            pending_probe_timers: 0,
            next_exec: 0,
            main_tid,
            render_tid,
            worker_tids,
            executors: Vec::new(),
            tasks: Vec::new(),
            cfg,
        };
        // One pinned system thread per core, with staggered first wakes,
        // models device background activity (IRQ/kworker style).
        for core in 0..world.cfg.cores {
            let tid = world.threads.len();
            let mut t = SimThread::new(
                ThreadId(tid),
                format!("kworker/{core}"),
                ThreadKind::System,
                PRIO_SYSTEM,
                WorkSource::Pulse {
                    period_ns: world.cfg.system_period_ns,
                    jitter: 0.45,
                    burst_ns: world.cfg.system_burst_ns,
                    profile: MemProfile::system(),
                },
            );
            t.affinity = Some(core);
            t.state = ThreadState::Blocked;
            world.threads.push(t);
            let offset = world.rng.uniform_u64(0, world.cfg.system_period_ns.max(1));
            world.push_ev(SimTime(offset), Ev::Wake { tid });
        }
        world
    }

    fn push_ev(&mut self, at: SimTime, ev: Ev) {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(QEntry {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn app_quiet(&self) -> bool {
        if self.pending_arrivals > 0 || self.pending_probe_timers > 0 {
            return false;
        }
        if !self.actions.is_empty()
            || !self.main_q.is_empty()
            || !self.render_q.is_empty()
            || !self.worker_q.is_empty()
            || self.executors.iter().any(|e| !e.queue.is_empty())
        {
            return false;
        }
        self.threads
            .iter()
            .filter(|t| t.is_app())
            .all(|t| t.exec.is_none() && t.state == ThreadState::Waiting)
    }

    /// Resolves the worker-side thread currently responsible for `task`
    /// not being done: the thread running it, or — when the task is
    /// still queued — the thread running its executor's head-of-line
    /// blocker (the in-flight task with the smallest id on that
    /// executor). On a serial executor that head is the convoy front,
    /// so one hop covers the transitive queue walk.
    fn blocking_thread_of(&self, task: u64) -> Option<usize> {
        let t = &self.tasks[task as usize];
        match t.status {
            TaskStatus::Running { tid } => Some(tid.0),
            TaskStatus::Done => None,
            TaskStatus::Queued => self.executors[t.executor]
                .thread_tids
                .iter()
                .copied()
                .filter_map(|w| match self.threads[w].exec.as_ref().map(|e| &e.item) {
                    Some(&WorkItem::ExecutorTask { task: running }) => Some((running, w)),
                    _ => None,
                })
                .min_by_key(|&(running, _)| running)
                .map(|(_, w)| w),
        }
    }

    // ---- scheduling primitives ------------------------------------------

    fn prio(&self, tid: usize) -> u8 {
        self.threads[tid].priority
    }

    fn allowed(&self, tid: usize, core: usize) -> bool {
        match self.threads[tid].affinity {
            Some(c) => c == core,
            None => true,
        }
    }

    fn make_ready(&mut self, tid: usize) {
        debug_assert!(!matches!(
            self.threads[tid].state,
            ThreadState::Running { .. }
        ));
        self.threads[tid].state = ThreadState::Ready;
        let p = self.prio(tid) as usize;
        self.ready[p].push_back(tid);
    }

    /// Accrues CPU time of the thread running on `core` up to `self.now`.
    fn accrue_running(&mut self, core: usize) {
        // A pre-accrued pulse burst already booked its whole CPU time at
        // wake; there is nothing incremental to account (and no exec).
        if self.cores[core].preaccrued {
            return;
        }
        let Some(tid) = self.cores[core].running else {
            return;
        };
        let elapsed = self.now - self.cores[core].accrue_from;
        self.cores[core].accrue_from = self.now;
        if elapsed == 0 {
            return;
        }
        let SimThread { exec, counters, .. } = &mut self.threads[tid];
        let exec = exec.as_mut().expect("running thread has no exec");
        match exec.steps.front_mut() {
            Some(Step::Cpu { ns, profile }) => {
                *ns = ns.saturating_sub(elapsed);
                profile.accrue(counters, elapsed, &mut self.rng);
            }
            other => panic!("running thread front step is {other:?}, not Cpu"),
        }
    }

    fn accrue_all_running(&mut self) {
        for core in 0..self.cores.len() {
            self.accrue_running(core);
        }
    }

    /// Takes the thread off its core (if running), optionally counting a
    /// context switch. The caller sets the new state.
    fn off_cpu(&mut self, tid: usize, count_cs: bool) {
        if let ThreadState::Running { core } = self.threads[tid].state {
            self.accrue_running(core);
            self.cores[core].running = None;
            self.cores[core].gen += 1;
            self.threads[tid].last_core = Some(core);
        }
        if count_cs {
            self.threads[tid]
                .counters
                .add(HwEvent::ContextSwitches, 1.0);
        }
    }

    fn find_free_core(&self, tid: usize) -> Option<usize> {
        // Pinned threads (the per-core system threads, woken millions of
        // times per run) have exactly one candidate core.
        match self.threads[tid].affinity {
            Some(c) => self.cores[c].running.is_none().then_some(c),
            None => (0..self.cores.len()).find(|&c| self.cores[c].running.is_none()),
        }
    }

    fn find_victim_core(&self, tid: usize) -> Option<usize> {
        let p = self.prio(tid);
        match self.threads[tid].affinity {
            Some(c) => self.cores[c]
                .running
                .and_then(|v| (self.prio(v) < p).then_some(c)),
            None => (0..self.cores.len())
                .filter_map(|c| self.cores[c].running.map(|v| (c, self.prio(v))))
                .filter(|&(_, vp)| vp < p)
                .min_by_key(|&(_, vp)| vp)
                .map(|(c, _)| c),
        }
    }

    fn preempt(&mut self, core: usize) {
        let victim = self.cores[core].running.expect("preempting an empty core");
        self.off_cpu(victim, true);
        self.threads[victim].state = ThreadState::Ready;
        let p = self.prio(victim) as usize;
        self.ready[p].push_back(victim);
    }

    fn start_run(&mut self, tid: usize, core: usize) {
        debug_assert!(self.cores[core].running.is_none());
        let th = &mut self.threads[tid];
        if let Some(last) = th.last_core {
            if last != core {
                th.counters.add(HwEvent::CpuMigrations, 1.0);
            }
        }
        th.state = ThreadState::Running { core };
        th.last_core = Some(core);
        let remaining = match th.exec.as_ref().and_then(|e| e.steps.front()) {
            Some(Step::Cpu { ns, .. }) => *ns,
            other => panic!("scheduling thread whose front step is {other:?}"),
        };
        let slot = &mut self.cores[core];
        slot.running = Some(tid);
        slot.gen += 1;
        slot.slice_end = self.now + self.cfg.timeslice_ns;
        slot.accrue_from = self.now;
        let gen = slot.gen;
        let boundary = (self.now + remaining).min(slot.slice_end);
        self.push_ev(boundary, Ev::Core { core, gen });
    }

    fn schedule(&mut self) {
        loop {
            let mut placed = false;
            'prio: for p in (0..NUM_PRIOS).rev() {
                for k in 0..self.ready[p].len() {
                    let tid = self.ready[p][k];
                    if let Some(core) = self.find_free_core(tid) {
                        self.ready[p].remove(k);
                        self.start_run(tid, core);
                        placed = true;
                        break 'prio;
                    }
                    if let Some(core) = self.find_victim_core(tid) {
                        self.ready[p].remove(k);
                        self.preempt(core);
                        self.start_run(tid, core);
                        placed = true;
                        break 'prio;
                    }
                }
            }
            if !placed {
                return;
            }
        }
    }

    /// Returns whether a ready thread with priority >= `p` could run on
    /// `core` (used to decide if an expired slice forces a requeue).
    fn contention_for(&self, core: usize, p: u8) -> bool {
        (p as usize..NUM_PRIOS).any(|q| self.ready[q].iter().any(|&tid| self.allowed(tid, core)))
    }

    // ---- work-item execution --------------------------------------------

    fn block_thread(&mut self, tid: usize, ns: u64) {
        let was_running = matches!(self.threads[tid].state, ThreadState::Running { .. });
        self.off_cpu(tid, true);
        if !was_running {
            // The thread blocked without holding a core (e.g. first step
            // of a message is I/O); it still context-switched once.
            debug_assert!(!matches!(
                self.threads[tid].state,
                ThreadState::Running { .. }
            ));
        }
        self.threads[tid].state = ThreadState::Blocked;
        self.push_ev(self.now + ns, Ev::Wake { tid });
    }

    fn go_idle(&mut self, tid: usize) {
        let was_running = matches!(self.threads[tid].state, ThreadState::Running { .. });
        self.off_cpu(tid, was_running);
        self.threads[tid].state = ThreadState::Waiting;
    }

    /// Wakes an idle queue-fed thread so it notices newly posted work.
    fn nudge(&mut self, tid: usize) {
        if self.threads[tid].state == ThreadState::Waiting && self.threads[tid].exec.is_none() {
            self.advance_thread(tid);
        }
    }

    fn begin_message(&mut self, tid: usize, msg: Message) {
        // A dispatch for a newer action force-ends any earlier action that
        // already finished its main-thread work ("a new action is
        // detected").
        while let Some(front) = self.actions.front() {
            if front.exec_id == msg.info.exec_id {
                break;
            }
            debug_assert!(
                front.finished_main.is_some(),
                "messages of action {:?} dispatched before {:?} finished",
                msg.info.exec_id,
                front.exec_id
            );
            self.end_front_action();
        }
        let act = self
            .actions
            .front_mut()
            .expect("message without active action");
        if act.began.is_none() {
            act.began = Some(self.now);
            if self.notices_enabled {
                self.notices.push(Notice::ActionBegin(ActionInfo {
                    exec_id: act.exec_id,
                    uid: act.uid,
                    name: act.name,
                    num_events: act.num_events,
                }));
            }
        }
        if self.notices_enabled {
            self.notices.push(Notice::DispatchBegin(msg.info));
        }
        self.threads[tid].exec = Some(ExecState::new(
            msg.steps,
            WorkItem::Message(msg.info),
            self.now,
        ));
    }

    fn end_front_action(&mut self) {
        let act = self.actions.pop_front().expect("no action to end");
        let record = ActionRecord {
            exec_id: act.exec_id,
            uid: act.uid,
            name: act.name,
            posted: act.posted,
            began: act.began.unwrap_or(act.posted),
            ended: self.now,
            event_responses: act.responses,
        };
        // The clone is paid only when a probe will consume the notice.
        if self.notices_enabled {
            self.notices.push(Notice::ActionEnd(record.clone()));
        }
        self.records.push(record);
    }

    fn render_idle(&self) -> bool {
        self.render_q.is_empty() && self.threads[self.render_tid].exec.is_none()
    }

    fn main_idle(&self) -> bool {
        self.main_q.is_empty() && self.threads[self.main_tid].exec.is_none()
    }

    fn check_quiesce(&mut self) {
        while let Some(front) = self.actions.front() {
            if front.finished_main.is_some() && self.render_idle() && self.main_idle() {
                self.end_front_action();
            } else {
                return;
            }
        }
    }

    /// Finishes the thread's current item (bookkeeping + notices) and
    /// clears `exec`.
    fn complete_item(&mut self, tid: usize) {
        let mut exec = self.threads[tid].exec.take().expect("no item to complete");
        // Return the (now empty) step buffer to the recycling pool; the
        // pool is bounded so long runs cannot hoard memory.
        if exec.steps.capacity() > 0 && self.spare_steps.len() < 16 {
            exec.steps.clear();
            self.spare_steps.push(std::mem::take(&mut exec.steps));
        }
        match exec.item {
            WorkItem::Message(info) => {
                let response = self.now - exec.began;
                let act = self
                    .actions
                    .front_mut()
                    .expect("message completion without action");
                debug_assert_eq!(act.exec_id, info.exec_id);
                act.responses.push(response);
                act.events_done += 1;
                if act.events_done == act.num_events {
                    act.finished_main = Some(self.now);
                }
                if self.notices_enabled {
                    self.notices.push(Notice::DispatchEnd(info, response));
                }
            }
            WorkItem::ExecutorTask { task } => {
                let t = &mut self.tasks[task as usize];
                t.status = TaskStatus::Done;
                t.finished = Some(self.now);
                let waiters = std::mem::take(&mut t.waiters);
                for w in waiters {
                    self.push_ev(self.now, Ev::Wake { tid: w });
                }
            }
            WorkItem::RenderFrame | WorkItem::WorkerTask | WorkItem::SystemBurst => {}
        }
    }

    /// Pulls the thread's next work item from its source. Returns `true`
    /// if an item was assigned (so stepping can continue) or `false`
    /// after parking the thread.
    fn pull_next_item(&mut self, tid: usize) -> bool {
        enum Src {
            Main,
            Render,
            Worker,
            Executor(usize),
        }
        let source = match &self.threads[tid].source {
            WorkSource::MainLooper => Src::Main,
            WorkSource::RenderQueue => Src::Render,
            WorkSource::WorkerQueue => Src::Worker,
            WorkSource::ExecutorQueue { executor } => Src::Executor(*executor),
            WorkSource::Pulse { .. } => {
                unreachable!("pulse threads run on the pre-accrued fast path")
            }
        };
        match source {
            Src::Main => {
                if let Some(msg) = self.main_q.pop_front() {
                    self.begin_message(tid, msg);
                    true
                } else {
                    self.go_idle(tid);
                    self.check_quiesce();
                    false
                }
            }
            Src::Render => {
                if let Some(frame_ns) = self.render_q.pop_front() {
                    let mut steps = self.spare_steps.pop().unwrap_or_default();
                    steps.push_back(Step::Cpu {
                        ns: frame_ns,
                        profile: MemProfile::render(),
                    });
                    self.threads[tid].exec = Some(ExecState::from_deque(
                        steps,
                        WorkItem::RenderFrame,
                        self.now,
                    ));
                    true
                } else {
                    self.go_idle(tid);
                    self.check_quiesce();
                    false
                }
            }
            Src::Worker => {
                if let Some(steps) = self.worker_q.pop_front() {
                    self.threads[tid].exec =
                        Some(ExecState::new(steps, WorkItem::WorkerTask, self.now));
                    true
                } else {
                    self.go_idle(tid);
                    false
                }
            }
            Src::Executor(ex) => {
                if let Some(task) = self.executors[ex].queue.pop_front() {
                    let t = &mut self.tasks[task as usize];
                    t.status = TaskStatus::Running { tid: ThreadId(tid) };
                    t.started = Some(self.now);
                    let steps = t.steps.take().expect("task body already taken");
                    self.threads[tid].exec = Some(ExecState::new(
                        steps,
                        WorkItem::ExecutorTask { task },
                        self.now,
                    ));
                    true
                } else {
                    self.go_idle(tid);
                    false
                }
            }
        }
    }

    /// Drives a thread through instantaneous steps until it needs the
    /// CPU, blocks, or parks.
    fn advance_thread(&mut self, tid: usize) {
        enum Ctl {
            Again,
            Pull,
            Complete,
            NeedCpu,
            Block(u64),
            Render {
                frames: u32,
                frame_ns: u64,
            },
            Worker(Vec<Step>),
            PostTask {
                executor: u32,
                token: u32,
                steps: Vec<Step>,
            },
            // Left at the step-queue front so the join is re-examined
            // when the task's completion event wakes this thread.
            Join(u32),
        }
        loop {
            // Peek at the front step and only dequeue it once its fate is
            // known: the hot Cpu path never moves the (large) `Step` value
            // in and out of the deque.
            let ctl = {
                let th = &mut self.threads[tid];
                match th.exec.as_mut() {
                    None => Ctl::Pull,
                    Some(exec) => match exec.steps.front_mut() {
                        None => Ctl::Complete,
                        Some(&mut Step::Cpu { ns, .. }) => {
                            if ns == 0 {
                                exec.steps.pop_front();
                                Ctl::Again
                            } else {
                                Ctl::NeedCpu
                            }
                        }
                        Some(&mut Step::Push(f)) => {
                            exec.steps.pop_front();
                            exec.stack.push(f);
                            Ctl::Again
                        }
                        Some(&mut Step::Pop) => {
                            exec.steps.pop_front();
                            exec.stack.pop();
                            Ctl::Again
                        }
                        Some(&mut Step::Io { ns }) => {
                            exec.steps.pop_front();
                            Ctl::Block(ns)
                        }
                        Some(&mut Step::NetIo { ns, bytes }) => {
                            exec.steps.pop_front();
                            th.net_bytes += bytes;
                            Ctl::Block(ns)
                        }
                        Some(&mut Step::PostRender { frames, frame_ns }) => {
                            exec.steps.pop_front();
                            Ctl::Render { frames, frame_ns }
                        }
                        Some(Step::PostWorker(_)) => match exec.steps.pop_front() {
                            Some(Step::PostWorker(steps)) => Ctl::Worker(steps),
                            _ => unreachable!("front was PostWorker"),
                        },
                        Some(Step::PostTask { .. }) => match exec.steps.pop_front() {
                            Some(Step::PostTask {
                                executor,
                                token,
                                steps,
                            }) => Ctl::PostTask {
                                executor,
                                token,
                                steps,
                            },
                            _ => unreachable!("front was PostTask"),
                        },
                        Some(&mut Step::JoinTask { token }) => Ctl::Join(token),
                    },
                }
            };
            match ctl {
                Ctl::Again => {}
                Ctl::Pull => {
                    if !self.pull_next_item(tid) {
                        return;
                    }
                }
                Ctl::Complete => self.complete_item(tid),
                Ctl::NeedCpu => {
                    if !matches!(self.threads[tid].state, ThreadState::Running { .. })
                        && self.threads[tid].state != ThreadState::Ready
                    {
                        self.make_ready(tid);
                    }
                    return;
                }
                Ctl::Block(ns) => {
                    self.block_thread(tid, ns);
                    return;
                }
                Ctl::Render { frames, frame_ns } => {
                    for _ in 0..frames {
                        self.render_q.push_back(frame_ns);
                    }
                    let render = self.render_tid;
                    self.nudge(render);
                }
                Ctl::Worker(steps) => {
                    self.worker_q.push_back(steps);
                    let idle = (0..self.worker_tids.len())
                        .map(|i| self.worker_tids[i])
                        .find(|&w| self.threads[w].state == ThreadState::Waiting);
                    if let Some(w) = idle {
                        self.nudge(w);
                    }
                }
                Ctl::PostTask {
                    executor,
                    token,
                    steps,
                } => {
                    let ex = executor as usize;
                    let task = self.tasks.len() as u64;
                    self.tasks.push(TaskState {
                        executor: ex,
                        status: TaskStatus::Queued,
                        steps: Some(steps),
                        posted: self.now,
                        started: None,
                        finished: None,
                        waiters: Vec::new(),
                    });
                    self.threads[tid]
                        .exec
                        .as_mut()
                        .expect("PostTask outside a work item")
                        .handles
                        .push((token, task));
                    self.executors[ex].queue.push_back(task);
                    let idle = self.executors[ex]
                        .thread_tids
                        .iter()
                        .copied()
                        .find(|&w| self.threads[w].state == ThreadState::Waiting);
                    if let Some(w) = idle {
                        self.nudge(w);
                    }
                }
                Ctl::Join(token) => {
                    let task = self.threads[tid]
                        .exec
                        .as_ref()
                        .expect("JoinTask outside a work item")
                        .handles
                        .iter()
                        .find(|&&(t, _)| t == token)
                        .map(|&(_, id)| id)
                        .expect("JoinTask token has no matching PostTask");
                    if self.tasks[task as usize].status == TaskStatus::Done {
                        // The future already resolved: the join is free.
                        let exec = self.threads[tid].exec.as_mut().expect("checked above");
                        exec.steps.pop_front();
                    } else {
                        // Wait edge: block with no timed wake; the task's
                        // completion event wakes us and re-runs the join.
                        self.tasks[task as usize].waiters.push(tid);
                        self.off_cpu(tid, true);
                        self.threads[tid].state = ThreadState::Blocked;
                        return;
                    }
                }
            }
        }
    }

    // ---- event handlers --------------------------------------------------

    fn handle_core(&mut self, core: usize, gen: u64) {
        if self.cores[core].gen != gen {
            return;
        }
        let tid = self.cores[core].running.expect("core event without thread");
        if self.cores[core].preaccrued {
            self.finish_pulse_burst(tid, core);
            return;
        }
        self.accrue_running(core);
        let finished = matches!(
            self.threads[tid]
                .exec
                .as_ref()
                .and_then(|e| e.steps.front()),
            Some(Step::Cpu { ns: 0, .. })
        );
        if finished {
            self.advance_thread(tid);
        }
        if let ThreadState::Running { core: c } = self.threads[tid].state {
            debug_assert_eq!(c, core);
            let p = self.prio(tid);
            let slot = self.cores[core];
            let remaining = match self.threads[tid]
                .exec
                .as_ref()
                .and_then(|e| e.steps.front())
            {
                Some(Step::Cpu { ns, .. }) => *ns,
                other => panic!("running thread front step is {other:?}"),
            };
            if self.now >= slot.slice_end && self.contention_for(core, p) {
                self.off_cpu(tid, true);
                self.threads[tid].state = ThreadState::Ready;
                self.ready[p as usize].push_back(tid);
                self.schedule();
            } else {
                let slot = &mut self.cores[core];
                if self.now >= slot.slice_end {
                    slot.slice_end = self.now + self.cfg.timeslice_ns;
                }
                let slice_end = slot.slice_end;
                let gen = slot.gen;
                let boundary = (self.now + remaining).min(slice_end);
                self.push_ev(boundary, Ev::Core { core, gen });
            }
        } else {
            self.schedule();
        }
    }

    fn handle_wake(&mut self, tid: usize) {
        if matches!(self.threads[tid].source, WorkSource::Pulse { .. }) {
            self.begin_pulse_burst(tid);
            return;
        }
        self.advance_thread(tid);
        self.schedule();
    }

    /// System-pulse fast path. A pulse thread is pinned to one core at
    /// the highest priority, so its burst always runs uninterrupted from
    /// the wake instant: nothing can preempt it, its slice (10 ms)
    /// outlasts the burst (~350 µs), and only one pulse exists per core.
    /// That licenses accruing the whole burst here, at wake, and parking
    /// a `preaccrued` marker on the core instead of building an exec and
    /// pushing the thread through the ready queue and scheduler. One
    /// parent RNG draw per pulse cycle, fanned out, funds the burst
    /// length, the next wake period (stashed in the core slot), and the
    /// accrual entropy — deterministic per seed like everything else.
    fn begin_pulse_burst(&mut self, tid: usize) {
        let (period_ns, jitter, burst_ns, profile) = match &self.threads[tid].source {
            WorkSource::Pulse {
                period_ns,
                jitter,
                burst_ns,
                profile,
            } => (*period_ns, *jitter, *burst_ns, *profile),
            _ => unreachable!("begin_pulse_burst on a non-pulse thread"),
        };
        let core = self.threads[tid].affinity.expect("pulse thread unpinned");
        let entropy = self.rng.next_u64();
        let mut fan = JitterFan::new(entropy);
        let ns = (((burst_ns as f64) * fan.jitter(0.5)) as u64).max(1);
        let period = (((period_ns as f64) * fan.jitter(jitter)) as u64).max(1);
        let preempted = self.cores[core].running.is_some();
        if preempted {
            self.preempt(core);
        }
        {
            let th = &mut self.threads[tid];
            th.state = ThreadState::Running { core };
            th.last_core = Some(core);
            profile.accrue_seeded(&mut th.counters, ns, entropy ^ PULSE_ACCRUE_SALT);
        }
        let slot = &mut self.cores[core];
        slot.running = Some(tid);
        slot.gen += 1;
        slot.preaccrued = true;
        slot.pulse_period = period;
        slot.slice_end = self.now + self.cfg.timeslice_ns;
        slot.accrue_from = self.now;
        let gen = slot.gen;
        self.push_ev(self.now + ns, Ev::Core { core, gen });
        if preempted {
            // The evicted thread may be able to migrate to a free core.
            self.schedule();
        }
    }

    /// Ends a pre-accrued pulse burst: frees the core, counts the pulse's
    /// context switch, and arms the wake drawn at burst start.
    fn finish_pulse_burst(&mut self, tid: usize, core: usize) {
        let slot = &mut self.cores[core];
        debug_assert_eq!(slot.running, Some(tid));
        slot.running = None;
        slot.gen += 1;
        slot.preaccrued = false;
        let period = slot.pulse_period;
        let th = &mut self.threads[tid];
        th.counters.add(HwEvent::ContextSwitches, 1.0);
        th.state = ThreadState::Blocked;
        self.push_ev(self.now + period, Ev::Wake { tid });
        // Freeing a core only matters if some thread is waiting for one;
        // on an idle device (the common case between actions) the ready
        // queues are empty and the scheduler pass would be a no-op.
        if self.ready.iter().any(|q| !q.is_empty()) {
            self.schedule();
        }
    }

    fn handle_arrive(&mut self, req: ArrivedRequest) {
        self.pending_arrivals -= 1;
        self.next_exec += 1;
        let exec_id = ExecId(self.next_exec);
        let num_events = req.events.len();
        self.actions.push_back(ActiveAction {
            exec_id,
            uid: req.uid,
            name: req.name,
            posted: self.now,
            began: None,
            responses: Vec::new(),
            num_events,
            events_done: 0,
            finished_main: None,
        });
        for (i, steps) in req.events.into_iter().enumerate() {
            self.main_q.push_back(Message {
                info: MessageInfo {
                    exec_id,
                    action_uid: req.uid,
                    action_name: req.name,
                    event_index: i,
                    num_events,
                },
                steps,
            });
        }
        if num_events == 0 {
            // Degenerate action: record it as instantly complete.
            let act = self.actions.back_mut().unwrap();
            act.began = Some(self.now);
            act.finished_main = Some(self.now);
            self.check_quiesce();
            return;
        }
        let main = self.main_tid;
        self.nudge(main);
        self.schedule();
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Core { core, gen } => self.handle_core(core, gen),
            Ev::Wake { tid } => self.handle_wake(tid),
            Ev::ProbeTimer { probe, token } => {
                self.pending_probe_timers -= 1;
                self.monitor.timer_fires += 1;
                self.notices.push(Notice::Timer { probe, token });
            }
        }
    }
}

/// Per-callback access handed to [`Probe`]s.
pub struct ProbeCtx<'a> {
    world: &'a mut World,
    probe_idx: usize,
}

impl ProbeCtx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The app's main thread.
    pub fn main_tid(&self) -> ThreadId {
        ThreadId(self.world.main_tid)
    }

    /// The app's render thread.
    pub fn render_tid(&self) -> ThreadId {
        ThreadId(self.world.render_tid)
    }

    /// The app's background worker threads.
    pub fn worker_tids(&self) -> Vec<ThreadId> {
        self.world
            .worker_tids
            .iter()
            .map(|&t| ThreadId(t))
            .collect()
    }

    /// Reads the ground-truth accumulated count of `event` on `tid`.
    ///
    /// Monitoring layers (e.g. the simpleperf analog in `hd-perfmon`)
    /// add read cost and multiplexing error on top of this.
    pub fn counter(&mut self, tid: ThreadId, event: HwEvent) -> f64 {
        self.world.accrue_all_running();
        self.world.threads[tid.0].counters.get(event)
    }

    /// Bytes `tid` has transferred over the network so far (the
    /// `/proc/uid_stat` analog used by the network-on-main extension).
    pub fn net_bytes(&self, tid: ThreadId) -> u64 {
        self.world.threads[tid.0].net_bytes
    }

    /// Snapshot of the main thread's current call stack.
    pub fn main_stack(&self) -> Vec<FrameId> {
        self.world.threads[self.world.main_tid].stack().to_vec()
    }

    /// Snapshot of the main thread's stack with causal extension: when
    /// main is blocked in a [`Step::JoinTask`] wait edge, the stack of
    /// the worker-side thread responsible for the joined task — the
    /// thread running it, or the head-of-line blocker on its executor —
    /// is appended, so trace analysis sees the culprit API as the leaf
    /// instead of the innocent join site. Identical to [`main_stack`]
    /// (`Self::main_stack`) whenever main is not join-blocked or no
    /// culprit thread is resolvable.
    pub fn main_stack_causal(&self) -> Vec<FrameId> {
        let w = &self.world;
        let th = &w.threads[w.main_tid];
        let mut stack = th.stack().to_vec();
        if th.state != ThreadState::Blocked {
            return stack;
        }
        let Some(exec) = th.exec.as_ref() else {
            return stack;
        };
        let Some(&Step::JoinTask { token }) = exec.steps.front() else {
            return stack;
        };
        let Some(&(_, task)) = exec.handles.iter().find(|&&(t, _)| t == token) else {
            return stack;
        };
        if let Some(culprit) = w.blocking_thread_of(task) {
            stack.extend_from_slice(w.threads[culprit].stack());
        }
        stack
    }

    /// Resolves a frame id.
    pub fn frame(&self, id: FrameId) -> &Frame {
        self.world.frames.get(id)
    }

    /// Resolves an interned action name (as carried by `MessageInfo`,
    /// `ActionInfo`, and `ActionRecord`).
    pub fn action_name(&self, id: NameId) -> &str {
        self.world.names.get(id)
    }

    /// Arms a one-shot timer for this probe at absolute time `at`.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.world.pending_probe_timers += 1;
        let probe = self.probe_idx;
        self.world.push_ev(at, Ev::ProbeTimer { probe, token });
    }

    /// Charges monitoring CPU cost against the app.
    pub fn charge_cpu(&mut self, ns: u64) {
        self.world.monitor.cpu_ns += ns;
    }

    /// Charges monitoring memory traffic against the app.
    pub fn charge_mem(&mut self, bytes: u64) {
        self.world.monitor.mem_bytes += bytes;
    }

    /// Notes one performance-counter read (for overhead bookkeeping).
    pub fn note_counter_read(&mut self) {
        self.world.monitor.counter_reads += 1;
    }

    /// Notes one collected stack sample (for overhead bookkeeping).
    pub fn note_stack_sample(&mut self) {
        self.world.monitor.stack_samples += 1;
    }

    /// Deterministic per-run jitter for monitoring-cost models.
    pub fn jitter(&mut self, j: f64) -> f64 {
        self.world.rng.jitter(j)
    }
}

/// The simulator: a [`World`] plus installed probes.
pub struct Simulator {
    world: World,
    probes: Vec<Box<dyn Probe>>,
    ran: bool,
}

impl Simulator {
    /// Creates a simulator hosting one app process.
    ///
    /// `frames` is the interned frame table produced when the app model
    /// was compiled; probes resolve stack samples against it. Accepts
    /// either an owned table or a shared `Arc` handle (the compiled-app
    /// cache passes the same `Arc` to every device in a fleet).
    pub fn new(cfg: SimConfig, frames: impl Into<Arc<FrameTable>>) -> Simulator {
        Simulator {
            world: World::new(cfg, frames.into()),
            probes: Vec::new(),
            ran: false,
        }
    }

    /// Installs a probe; returns its index (timer callbacks are routed
    /// per probe). Installing any probe enables notice delivery, which
    /// the hot loop otherwise skips.
    pub fn add_probe(&mut self, probe: Box<dyn Probe>) -> usize {
        self.world.notices_enabled = true;
        self.probes.push(probe);
        self.probes.len() - 1
    }

    /// Adds a bounded executor (a serial executor when `width == 1`)
    /// backed by `width` dedicated threads, and returns the executor
    /// index referenced by [`Step::PostTask`]. Draws no RNG, so adding
    /// executors never perturbs the event schedule of apps that do not
    /// post to them.
    pub fn add_executor(&mut self, name: &str, width: usize) -> usize {
        debug_assert!(!self.ran, "add_executor after run");
        assert!(width >= 1, "an executor needs at least one thread");
        let idx = self.world.executors.len();
        let mut thread_tids = Vec::with_capacity(width);
        for i in 0..width {
            let tid = self.world.threads.len();
            thread_tids.push(tid);
            self.world.threads.push(SimThread::new(
                ThreadId(tid),
                format!("{name}-{}", i + 1),
                ThreadKind::Worker,
                PRIO_WORKER,
                WorkSource::ExecutorQueue { executor: idx },
            ));
        }
        self.world.executors.push(ExecutorState {
            queue: VecDeque::new(),
            thread_tids,
        });
        idx
    }

    /// Pre-sizes the event queue and record storage for a run that will
    /// schedule about `actions` user actions, so the hot loop never
    /// reallocates them mid-run.
    pub fn reserve_actions(&mut self, actions: usize) {
        self.world.arrivals.reserve(actions);
        self.world.queue.reserve(2 * self.world.cfg.cores + 16);
        self.world.records.reserve(actions);
    }

    /// Schedules a user action to arrive at `at`.
    ///
    /// The action name is interned here, once; everything downstream
    /// (messages, notices, records) carries the 4-byte [`NameId`].
    pub fn schedule_action(&mut self, at: SimTime, req: ActionRequest) {
        debug_assert!(!self.ran, "schedule_action after run");
        let name = self.world.names.intern(&req.name);
        self.world.pending_arrivals += 1;
        // Arrivals take a sequence number from the same counter as heap
        // events so the (at, seq) total order is exactly what a single
        // shared queue would have produced.
        let at = at.max(self.world.now);
        self.world.seq += 1;
        self.world.arrivals.push_back((
            at,
            self.world.seq,
            ArrivedRequest {
                uid: req.uid,
                name,
                events: req.events,
            },
        ));
    }

    /// Runs until all app work (and probe timers) drain, or the horizon
    /// is hit.
    pub fn run(&mut self) -> RunSummary {
        debug_assert!(!self.ran, "Simulator::run called twice");
        self.ran = true;
        let mut truncated = false;
        // Arrivals were staged in schedule order; establish (at, seq)
        // order once so the merge below pops the global minimum.
        self.world
            .arrivals
            .make_contiguous()
            .sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        loop {
            if self.world.app_quiet() {
                break;
            }
            // The next event is the earlier of the staged-arrival head and
            // the transient-event heap top; (at, seq) is a total order, so
            // this is exactly the order one shared queue would produce.
            let take_arrival = match (self.world.arrivals.front(), self.world.queue.peek()) {
                (Some(&(a_at, a_seq, _)), Some(top)) => (a_at, a_seq) < (top.at, top.seq),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let at = if take_arrival {
                self.world.arrivals.front().expect("checked above").0
            } else {
                self.world.queue.peek().expect("checked above").at
            };
            debug_assert!(at >= self.world.now, "time went backwards");
            self.world.now = at;
            if self.world.now.as_ns() > self.world.cfg.max_sim_ns {
                truncated = true;
                break;
            }
            if take_arrival {
                let (_, _, req) = self.world.arrivals.pop_front().expect("checked above");
                self.world.handle_arrive(req);
            } else {
                let entry = self.world.queue.pop().expect("checked above");
                self.world.handle(entry.ev);
            }
            if !self.world.notices.is_empty() {
                self.drain_notices();
            }
        }
        for i in 0..self.probes.len() {
            let mut ctx = ProbeCtx {
                world: &mut self.world,
                probe_idx: i,
            };
            self.probes[i].on_sim_end(&mut ctx);
        }
        RunSummary {
            ended_at: self.world.now,
            truncated,
            actions_completed: self.world.records.len(),
        }
    }

    fn drain_notices(&mut self) {
        while !self.world.notices.is_empty() {
            let batch: Vec<Notice> = std::mem::take(&mut self.world.notices);
            for notice in batch {
                match notice {
                    Notice::ActionBegin(info) => {
                        for i in 0..self.probes.len() {
                            let mut ctx = ProbeCtx {
                                world: &mut self.world,
                                probe_idx: i,
                            };
                            self.probes[i].on_action_begin(&mut ctx, &info);
                        }
                    }
                    Notice::DispatchBegin(info) => {
                        for i in 0..self.probes.len() {
                            let mut ctx = ProbeCtx {
                                world: &mut self.world,
                                probe_idx: i,
                            };
                            self.probes[i].on_dispatch_begin(&mut ctx, &info);
                        }
                    }
                    Notice::DispatchEnd(info, response) => {
                        for i in 0..self.probes.len() {
                            let mut ctx = ProbeCtx {
                                world: &mut self.world,
                                probe_idx: i,
                            };
                            self.probes[i].on_dispatch_end(&mut ctx, &info, response);
                        }
                    }
                    Notice::ActionEnd(record) => {
                        for i in 0..self.probes.len() {
                            let mut ctx = ProbeCtx {
                                world: &mut self.world,
                                probe_idx: i,
                            };
                            self.probes[i].on_action_end(&mut ctx, &record);
                        }
                    }
                    Notice::Timer { probe, token } => {
                        let mut ctx = ProbeCtx {
                            world: &mut self.world,
                            probe_idx: probe,
                        };
                        self.probes[probe].on_timer(&mut ctx, token);
                    }
                }
            }
        }
    }

    /// Completed action records, in completion order.
    pub fn records(&self) -> &[ActionRecord] {
        &self.world.records
    }

    /// Records of all executor tasks posted during the run, in posting
    /// order (a task's id is its index).
    pub fn task_records(&self) -> Vec<TaskRecord> {
        self.world
            .tasks
            .iter()
            .map(|t| TaskRecord {
                executor: t.executor,
                status: t.status,
                posted: t.posted,
                started: t.started,
                finished: t.finished,
            })
            .collect()
    }

    /// Accumulated monitoring cost of all probes.
    pub fn monitor_cost(&self) -> MonitorCost {
        self.world.monitor
    }

    /// The interned frame table.
    pub fn frame_table(&self) -> &FrameTable {
        self.world.frames.as_ref()
    }

    /// The interned action-name table (ids in schedule order).
    pub fn name_table(&self) -> &NameTable {
        &self.world.names
    }

    /// Resolves an interned action name.
    pub fn action_name(&self, id: NameId) -> &str {
        self.world.names.get(id)
    }

    /// Reads the final ground-truth count of `event` on `tid`.
    pub fn thread_counter(&self, tid: ThreadId, event: HwEvent) -> f64 {
        self.world.threads[tid.0].counters.get(event)
    }

    /// The app's main thread id.
    pub fn main_tid(&self) -> ThreadId {
        ThreadId(self.world.main_tid)
    }

    /// The app's render thread id.
    pub fn render_tid(&self) -> ThreadId {
        ThreadId(self.world.render_tid)
    }

    /// Total CPU time consumed by app threads, in ns.
    pub fn app_cpu_ns(&self) -> u64 {
        self.world
            .threads
            .iter()
            .filter(|t| t.is_app())
            .map(|t| t.counters.get(HwEvent::TaskClock))
            .sum::<f64>() as u64
    }

    /// Total memory accesses issued by app threads (traffic proxy).
    pub fn app_mem_accesses(&self) -> f64 {
        self.world
            .threads
            .iter()
            .filter(|t| t.is_app())
            .map(|t| t.counters.get(HwEvent::RawMemAccess))
            .sum()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::looper::ActionUid;
    use crate::work::nominal_duration;

    fn ui_event(table: &mut FrameTable, cpu_ms: u64, frames: u32) -> Vec<Step> {
        let handler = table.intern_new("app.Main.onClick", "Main.java", 40);
        let api = table.intern_new("android.view.View.setText", "View.java", 10);
        vec![
            Step::Push(handler),
            Step::Push(api),
            Step::Cpu {
                ns: cpu_ms * MILLIS,
                profile: MemProfile::ui(),
            },
            Step::PostRender {
                frames,
                frame_ns: 4 * MILLIS,
            },
            Step::Pop,
            Step::Pop,
        ]
    }

    fn io_event(table: &mut FrameTable, io_ms: u64) -> Vec<Step> {
        let handler = table.intern_new("app.Main.onResume", "Main.java", 80);
        let api = table.intern_new("android.hardware.Camera.open", "Camera.java", 120);
        vec![
            Step::Push(handler),
            Step::Push(api),
            Step::Cpu {
                ns: MILLIS,
                profile: MemProfile::io_stub(),
            },
            Step::Io { ns: io_ms * MILLIS },
            Step::Pop,
            Step::Pop,
        ]
    }

    fn one_action_sim(events: Vec<Vec<Step>>, table: FrameTable) -> Simulator {
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.schedule_action(
            SimTime::from_ms(10),
            ActionRequest {
                uid: ActionUid(1),
                name: "tap".into(),
                events,
            },
        );
        sim
    }

    #[test]
    fn single_ui_action_completes_with_plausible_response() {
        let mut table = FrameTable::new();
        let ev = ui_event(&mut table, 30, 5);
        let (cpu, io) = nominal_duration(&ev);
        assert_eq!(cpu, 30 * MILLIS);
        assert_eq!(io, 0);
        let mut sim = one_action_sim(vec![ev], table);
        let summary = sim.run();
        assert!(!summary.truncated);
        assert_eq!(summary.actions_completed, 1);
        let rec = &sim.records()[0];
        // Response covers the CPU work plus some preemption dilation.
        let resp = rec.max_response_ns();
        assert!(resp >= 30 * MILLIS, "resp={resp}");
        assert!(resp < 90 * MILLIS, "resp={resp}");
        // The action ends only after the render thread drains its frames.
        assert!(rec.ended.as_ns() >= rec.began.as_ns() + resp);
    }

    #[test]
    fn io_block_counts_context_switch_and_extends_response() {
        let mut table = FrameTable::new();
        let ev = io_event(&mut table, 250);
        let mut sim = one_action_sim(vec![ev], table);
        sim.run();
        let rec = &sim.records()[0];
        assert!(rec.max_response_ns() >= 251 * MILLIS);
        let cs = sim.thread_counter(sim.main_tid(), HwEvent::ContextSwitches);
        assert!(cs >= 1.0, "main cs = {cs}");
        // Render thread did nothing.
        assert_eq!(
            sim.thread_counter(sim.render_tid(), HwEvent::TaskClock),
            0.0
        );
    }

    #[test]
    fn render_work_accrues_on_render_thread() {
        let mut table = FrameTable::new();
        let ev = ui_event(&mut table, 10, 20);
        let mut sim = one_action_sim(vec![ev], table);
        sim.run();
        let render_clock = sim.thread_counter(sim.render_tid(), HwEvent::TaskClock);
        assert!(
            (render_clock - (20.0 * 4.0 * MILLIS as f64)).abs() < 1e-6,
            "render task-clock = {render_clock}"
        );
        let main_clock = sim.thread_counter(sim.main_tid(), HwEvent::TaskClock);
        assert!(render_clock > main_clock);
    }

    #[test]
    fn heavy_main_work_accumulates_context_switches() {
        let mut table = FrameTable::new();
        let handler = table.intern_new("app.Main.compute", "Main.java", 5);
        let ev = vec![
            Step::Push(handler),
            Step::Cpu {
                ns: 400 * MILLIS,
                profile: MemProfile::compute(),
            },
            Step::Pop,
        ];
        let mut sim = one_action_sim(vec![ev], table);
        sim.run();
        let cs = sim.thread_counter(sim.main_tid(), HwEvent::ContextSwitches);
        // Pinned system threads preempt roughly every few ms of runtime.
        assert!(cs > 40.0, "main cs = {cs}");
    }

    #[test]
    fn responses_measured_per_event_from_dequeue() {
        let mut table = FrameTable::new();
        let e0 = ui_event(&mut table, 50, 2);
        let e1 = ui_event(&mut table, 5, 1);
        let mut sim = one_action_sim(vec![e0, e1], table);
        sim.run();
        let rec = &sim.records()[0];
        assert_eq!(rec.event_responses.len(), 2);
        // Event 1 waits for event 0 but its response starts at dequeue,
        // so it stays short.
        assert!(rec.event_responses[0] > rec.event_responses[1]);
        assert!(rec.event_responses[1] < 20 * MILLIS);
    }

    #[test]
    fn worker_offload_keeps_main_responsive() {
        let mut table = FrameTable::new();
        let handler = table.intern_new("app.Main.onResume", "Main.java", 80);
        let cam = table.intern_new("android.hardware.Camera.open", "Camera.java", 120);
        let ev = vec![
            Step::Push(handler),
            Step::PostWorker(vec![
                Step::Push(cam),
                Step::Io { ns: 250 * MILLIS },
                Step::Pop,
            ]),
            Step::Cpu {
                ns: 20 * MILLIS,
                profile: MemProfile::ui(),
            },
            Step::PostRender {
                frames: 4,
                frame_ns: 4 * MILLIS,
            },
            Step::Pop,
        ];
        let mut sim = one_action_sim(vec![ev], table);
        sim.run();
        let rec = &sim.records()[0];
        assert!(
            rec.max_response_ns() < 100 * MILLIS,
            "resp = {}",
            rec.max_response_ns()
        );
    }

    #[test]
    fn dispatch_probe_sees_begin_and_end() {
        #[derive(Default)]
        struct Recorder {
            begins: usize,
            ends: usize,
            last_response: u64,
            action_begins: usize,
            action_ends: usize,
        }
        // Shared handle so we can inspect after the run.
        use std::cell::RefCell;
        use std::rc::Rc;
        struct P(Rc<RefCell<Recorder>>);
        impl Probe for P {
            fn on_action_begin(&mut self, _ctx: &mut ProbeCtx<'_>, _info: &ActionInfo) {
                self.0.borrow_mut().action_begins += 1;
            }
            fn on_dispatch_begin(&mut self, _ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                self.0.borrow_mut().begins += 1;
            }
            fn on_dispatch_end(
                &mut self,
                _ctx: &mut ProbeCtx<'_>,
                _info: &MessageInfo,
                response_ns: u64,
            ) {
                let mut r = self.0.borrow_mut();
                r.ends += 1;
                r.last_response = response_ns;
            }
            fn on_action_end(&mut self, _ctx: &mut ProbeCtx<'_>, _record: &ActionRecord) {
                self.0.borrow_mut().action_ends += 1;
            }
        }
        let mut table = FrameTable::new();
        let ev0 = ui_event(&mut table, 10, 1);
        let ev1 = ui_event(&mut table, 10, 1);
        let shared = Rc::new(RefCell::new(Recorder::default()));
        let mut sim = one_action_sim(vec![ev0, ev1], table);
        sim.add_probe(Box::new(P(shared.clone())));
        sim.run();
        let r = shared.borrow();
        assert_eq!(r.begins, 2);
        assert_eq!(r.ends, 2);
        assert_eq!(r.action_begins, 1);
        assert_eq!(r.action_ends, 1);
        assert!(r.last_response >= 10 * MILLIS);
    }

    #[test]
    fn probe_timer_fires_and_reads_stack() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Sampler {
            fired: Rc<RefCell<Vec<usize>>>,
        }
        impl Probe for Sampler {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                let at = ctx.now() + 5 * MILLIS;
                ctx.set_timer(at, 7);
            }
            fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
                assert_eq!(token, 7);
                self.fired.borrow_mut().push(ctx.main_stack().len());
            }
        }
        let mut table = FrameTable::new();
        let ev = ui_event(&mut table, 30, 1);
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = one_action_sim(vec![ev], table);
        sim.add_probe(Box::new(Sampler {
            fired: fired.clone(),
        }));
        sim.run();
        let fired = fired.borrow();
        assert_eq!(fired.len(), 1);
        // Mid-dispatch the stack holds the handler and the API frame.
        assert_eq!(fired[0], 2);
    }

    #[test]
    fn runs_are_deterministic_for_same_seed() {
        let build = || {
            let mut table = FrameTable::new();
            let ev = io_event(&mut table, 100);
            let ev2 = ui_event(&mut table, 25, 8);
            let mut sim = Simulator::new(SimConfig::default(), table);
            sim.schedule_action(
                SimTime::from_ms(5),
                ActionRequest {
                    uid: ActionUid(1),
                    name: "a".into(),
                    events: vec![ev],
                },
            );
            sim.schedule_action(
                SimTime::from_ms(600),
                ActionRequest {
                    uid: ActionUid(2),
                    name: "b".into(),
                    events: vec![ev2],
                },
            );
            sim.run();
            (
                sim.records()
                    .iter()
                    .map(|r| r.max_response_ns())
                    .collect::<Vec<_>>(),
                sim.thread_counter(sim.main_tid(), HwEvent::Instructions),
            )
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn back_to_back_actions_force_end_previous() {
        let mut table = FrameTable::new();
        let ev0 = ui_event(&mut table, 20, 30);
        let ev1 = ui_event(&mut table, 5, 1);
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "slow-render".into(),
                events: vec![ev0],
            },
        );
        // Arrives while the render thread is still chewing frames.
        sim.schedule_action(
            SimTime::from_ms(30),
            ActionRequest {
                uid: ActionUid(2),
                name: "next".into(),
                events: vec![ev1],
            },
        );
        let summary = sim.run();
        assert_eq!(summary.actions_completed, 2);
        let recs = sim.records();
        assert_eq!(recs[0].uid, ActionUid(1));
        assert_eq!(recs[1].uid, ActionUid(2));
        assert!(recs[0].ended <= recs[1].began + 1);
    }

    #[test]
    fn empty_action_is_recorded() {
        let table = FrameTable::new();
        let mut sim = one_action_sim(vec![], table);
        let summary = sim.run();
        assert_eq!(summary.actions_completed, 1);
        assert_eq!(sim.records()[0].max_response_ns(), 0);
    }

    #[test]
    fn monitor_charges_accumulate() {
        struct Charger;
        impl Probe for Charger {
            fn on_dispatch_end(
                &mut self,
                ctx: &mut ProbeCtx<'_>,
                _info: &MessageInfo,
                _response_ns: u64,
            ) {
                ctx.charge_cpu(1000);
                ctx.charge_mem(64);
                ctx.note_counter_read();
            }
        }
        let mut table = FrameTable::new();
        let ev = ui_event(&mut table, 5, 1);
        let mut sim = one_action_sim(vec![ev], table);
        sim.add_probe(Box::new(Charger));
        sim.run();
        let cost = sim.monitor_cost();
        assert_eq!(cost.cpu_ns, 1000);
        assert_eq!(cost.mem_bytes, 64);
        assert_eq!(cost.counter_reads, 1);
    }

    /// A main-thread event that posts one task to executor 0 and joins
    /// it behind a `FutureTask.get` frame.
    fn join_event(table: &mut FrameTable, main_cpu_ms: u64, task_io_ms: u64) -> Vec<Step> {
        let handler = table.intern_new("app.Main.onClick", "Main.java", 40);
        let culprit = table.intern_new("android.graphics.BitmapFactory.decodeFile", "B.java", 9);
        let join = table.intern_new("java.util.concurrent.FutureTask.get", "FutureTask.java", 1);
        vec![
            Step::Push(handler),
            Step::PostTask {
                executor: 0,
                token: 0,
                steps: vec![
                    Step::Push(culprit),
                    Step::Io {
                        ns: task_io_ms * MILLIS,
                    },
                    Step::Pop,
                ],
            },
            Step::Cpu {
                ns: main_cpu_ms * MILLIS,
                profile: MemProfile::ui(),
            },
            Step::Push(join),
            Step::JoinTask { token: 0 },
            Step::Pop,
            Step::Pop,
        ]
    }

    #[test]
    fn join_on_slow_task_blocks_main_until_completion() {
        let mut table = FrameTable::new();
        let ev = join_event(&mut table, 1, 200);
        let mut sim = one_action_sim(vec![ev], table);
        sim.add_executor("SerialExecutor", 1);
        let summary = sim.run();
        assert!(!summary.truncated);
        let rec = &sim.records()[0];
        // The join holds the dispatch open for the task's whole I/O.
        assert!(rec.max_response_ns() >= 200 * MILLIS);
        let tasks = sim.task_records();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].status, TaskStatus::Done);
        assert!(tasks[0].started.unwrap() >= tasks[0].posted);
    }

    #[test]
    fn join_on_finished_task_is_free() {
        let mut table = FrameTable::new();
        // Task finishes (~6 ms) long before main reaches the join (~51 ms).
        let ev = join_event(&mut table, 50, 5);
        let mut sim = one_action_sim(vec![ev], table);
        sim.add_executor("SerialExecutor", 1);
        sim.run();
        let rec = &sim.records()[0];
        let resp = rec.max_response_ns();
        assert!(resp >= 50 * MILLIS, "resp={resp}");
        assert!(resp < 120 * MILLIS, "resp={resp}");
    }

    #[test]
    fn saturated_pool_delays_queued_tasks() {
        let mut table = FrameTable::new();
        let handler = table.intern_new("app.Main.onClick", "Main.java", 40);
        let work = table.intern_new("com.google.gson.Gson.toJson", "Gson.java", 2);
        let task = |ms: u64| vec![Step::Push(work), Step::Io { ns: ms * MILLIS }, Step::Pop];
        let ev = vec![
            Step::Push(handler),
            Step::PostTask {
                executor: 0,
                token: 0,
                steps: task(80),
            },
            Step::PostTask {
                executor: 0,
                token: 1,
                steps: task(10),
            },
            Step::Cpu {
                ns: MILLIS,
                profile: MemProfile::ui(),
            },
            Step::Push(table.intern_new("java.util.concurrent.FutureTask.get", "F.java", 1)),
            Step::JoinTask { token: 1 },
            Step::Pop,
            Step::Pop,
        ];
        let mut sim = one_action_sim(vec![ev], table);
        sim.add_executor("SerialExecutor", 1);
        sim.run();
        let tasks = sim.task_records();
        assert_eq!(tasks.len(), 2);
        // No task starts before its submit edge, and the width-1 pool
        // serializes: the queued task waits for the convoy head.
        for t in &tasks {
            assert!(t.started.unwrap() >= t.posted);
        }
        assert!(tasks[1].started.unwrap() >= tasks[0].finished.unwrap());
        // The join waited on the convoy, so the response covers both.
        assert!(sim.records()[0].max_response_ns() >= 90 * MILLIS);
    }

    #[test]
    fn causal_stack_names_worker_culprit_during_join_block() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct CausalSampler {
            plain: Rc<RefCell<Vec<Vec<FrameId>>>>,
            causal: Rc<RefCell<Vec<Vec<FrameId>>>>,
        }
        impl Probe for CausalSampler {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                let at = ctx.now() + 100 * MILLIS;
                ctx.set_timer(at, 1);
            }
            fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, _token: u64) {
                self.plain.borrow_mut().push(ctx.main_stack());
                self.causal.borrow_mut().push(ctx.main_stack_causal());
            }
        }
        let mut table = FrameTable::new();
        let ev = join_event(&mut table, 1, 300);
        // Interning is idempotent: re-interning yields the existing ids.
        let culprit = table.intern_new("android.graphics.BitmapFactory.decodeFile", "B.java", 9);
        let join = table.intern_new("java.util.concurrent.FutureTask.get", "FutureTask.java", 1);
        let plain = Rc::new(RefCell::new(Vec::new()));
        let causal = Rc::new(RefCell::new(Vec::new()));
        let mut sim = one_action_sim(vec![ev], table);
        sim.add_executor("SerialExecutor", 1);
        sim.add_probe(Box::new(CausalSampler {
            plain: plain.clone(),
            causal: causal.clone(),
        }));
        sim.run();
        let plain = plain.borrow();
        let causal = causal.borrow();
        assert_eq!(plain.len(), 1);
        // Mid-join the plain stack bottoms out at the join site...
        assert_eq!(*plain[0].last().unwrap(), join);
        // ...while the causal stack walks the wait edge to the worker.
        assert_eq!(*causal[0].last().unwrap(), culprit);
        assert_eq!(&causal[0][..plain[0].len()], &plain[0][..]);
    }

    #[test]
    fn causal_stack_walks_serial_queue_to_convoy_head() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct S(Rc<RefCell<Vec<Vec<FrameId>>>>);
        impl Probe for S {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                let at = ctx.now() + 50 * MILLIS;
                ctx.set_timer(at, 1);
            }
            fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, _token: u64) {
                self.0.borrow_mut().push(ctx.main_stack_causal());
            }
        }
        let mut table = FrameTable::new();
        let handler = table.intern_new("app.Main.onClick", "Main.java", 40);
        let convoy = table.intern_new("com.app.Db.vacuum", "Db.java", 7);
        let fast = table.intern_new("com.app.Db.readRow", "Db.java", 9);
        let join = table.intern_new("java.util.concurrent.FutureTask.get", "F.java", 1);
        let ev = vec![
            Step::Push(handler),
            Step::PostTask {
                executor: 0,
                token: 0,
                steps: vec![Step::Push(convoy), Step::Io { ns: 200 * MILLIS }, Step::Pop],
            },
            Step::PostTask {
                executor: 0,
                token: 1,
                steps: vec![Step::Push(fast), Step::Io { ns: 2 * MILLIS }, Step::Pop],
            },
            Step::Cpu {
                ns: MILLIS,
                profile: MemProfile::ui(),
            },
            Step::Push(join),
            Step::JoinTask { token: 1 },
            Step::Pop,
            Step::Pop,
        ];
        let stacks = Rc::new(RefCell::new(Vec::new()));
        let mut sim = one_action_sim(vec![ev], table);
        sim.add_executor("SerialExecutor", 1);
        sim.add_probe(Box::new(S(stacks.clone())));
        sim.run();
        let stacks = stacks.borrow();
        assert_eq!(stacks.len(), 1);
        // The joined task is still queued behind the convoy head, so the
        // causal walk lands on the *convoy* frame, not the joined task.
        assert_eq!(*stacks[0].last().unwrap(), convoy);
    }

    #[test]
    fn unused_executor_never_perturbs_the_schedule() {
        let build = |with_executor: bool| {
            let mut table = FrameTable::new();
            let ev = io_event(&mut table, 100);
            let ev2 = ui_event(&mut table, 25, 8);
            let mut sim = Simulator::new(SimConfig::default(), table);
            if with_executor {
                sim.add_executor("SerialExecutor", 2);
            }
            sim.schedule_action(
                SimTime::from_ms(5),
                ActionRequest {
                    uid: ActionUid(1),
                    name: "a".into(),
                    events: vec![ev],
                },
            );
            sim.schedule_action(
                SimTime::from_ms(600),
                ActionRequest {
                    uid: ActionUid(2),
                    name: "b".into(),
                    events: vec![ev2],
                },
            );
            sim.run();
            (
                sim.records()
                    .iter()
                    .map(|r| r.max_response_ns())
                    .collect::<Vec<_>>(),
                sim.thread_counter(sim.main_tid(), HwEvent::Instructions),
            )
        };
        assert_eq!(build(false), build(true));
    }
}
