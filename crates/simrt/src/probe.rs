//! Probe interface: how detectors observe the simulated runtime.
//!
//! A probe models code running *inside the app process* (Hang Doctor runs
//! as "an additional, separate, and lightweight thread within the app").
//! It receives Looper dispatch callbacks and timer callbacks, can read
//! per-thread performance counters and the main thread's stack, and must
//! charge the CPU/memory cost of everything it does through
//! [`crate::simulator::ProbeCtx::charge_cpu`] /
//! [`crate::simulator::ProbeCtx::charge_mem`] so that monitoring overhead
//! can be measured exactly like the paper does.

use serde::{Deserialize, Serialize};

use crate::looper::{ActionInfo, ActionRecord, MessageInfo};
use crate::simulator::ProbeCtx;

/// Observer hooks into the simulated app runtime.
///
/// All methods default to no-ops so probes implement only what they need.
#[allow(unused_variables)]
pub trait Probe {
    /// The first input event of an action was dequeued.
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &ActionInfo) {}

    /// An input-event message was dequeued for execution on the main
    /// thread (Looper `>>>>> Dispatching` analog).
    fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo) {}

    /// An input-event message finished executing (`<<<<< Finished`),
    /// with its response time.
    fn on_dispatch_end(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo, response_ns: u64) {}

    /// The action ended: main and render threads went idle, or the next
    /// action was detected.
    fn on_action_end(&mut self, ctx: &mut ProbeCtx<'_>, record: &ActionRecord) {}

    /// A timer previously armed with `set_timer` fired.
    fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {}

    /// The simulation drained all app work and is about to stop.
    fn on_sim_end(&mut self, ctx: &mut ProbeCtx<'_>) {}
}

/// Accumulated cost of everything the probes did, charged against the
/// app process to compute monitoring overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MonitorCost {
    /// CPU time consumed by monitoring, in ns.
    pub cpu_ns: u64,
    /// Extra memory traffic caused by monitoring, in bytes.
    pub mem_bytes: u64,
    /// Number of counter reads performed.
    pub counter_reads: u64,
    /// Number of stack samples collected.
    pub stack_samples: u64,
    /// Number of timer callbacks delivered.
    pub timer_fires: u64,
}

impl MonitorCost {
    /// Merges another cost record into this one.
    pub fn merge(&mut self, other: &MonitorCost) {
        self.cpu_ns += other.cpu_ns;
        self.mem_bytes += other.mem_bytes;
        self.counter_reads += other.counter_reads;
        self.stack_samples += other.stack_samples;
        self.timer_fires += other.timer_fires;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = MonitorCost {
            cpu_ns: 10,
            mem_bytes: 20,
            counter_reads: 1,
            stack_samples: 2,
            timer_fires: 3,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.cpu_ns, 20);
        assert_eq!(a.mem_bytes, 40);
        assert_eq!(a.counter_reads, 2);
        assert_eq!(a.stack_samples, 4);
        assert_eq!(a.timer_fires, 6);
    }
}
