//! Synthetic stack frames and the interning table.
//!
//! The Diagnoser's Trace Analyzer reasons about *which method of which
//! class* was on the main thread's stack during a soft hang, and reports
//! the file and line of the root cause. Frames are interned so a stack is
//! just a `Vec<FrameId>` that can be copied cheaply at every sample.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Index of an interned frame in a [`FrameTable`].
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct FrameId(pub u32);

/// One synthetic stack frame: a method with its declaring class and
/// source location.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// Fully qualified method, e.g. `android.hardware.Camera.open`.
    pub symbol: String,
    /// Declaring class, e.g. `android.hardware.Camera`.
    pub class_name: String,
    /// Source file, e.g. `Camera.java`.
    pub file: String,
    /// Line number within `file`.
    pub line: u32,
}

impl Frame {
    /// Builds a frame, deriving the class name from the symbol's prefix.
    pub fn new(symbol: impl Into<String>, file: impl Into<String>, line: u32) -> Frame {
        let symbol = symbol.into();
        let class_name = symbol
            .rsplit_once('.')
            .map(|(class, _method)| class.to_string())
            .unwrap_or_else(|| symbol.clone());
        Frame {
            symbol,
            class_name,
            file: file.into(),
            line,
        }
    }

    /// Returns just the method name (the last dotted component).
    pub fn method(&self) -> &str {
        self.symbol
            .rsplit_once('.')
            .map(|(_, m)| m)
            .unwrap_or(&self.symbol)
    }
}

/// Interning table mapping frames to dense [`FrameId`]s.
#[derive(Clone, Debug, Default)]
pub struct FrameTable {
    frames: Vec<Frame>,
    index: HashMap<Frame, FrameId>,
}

impl FrameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `frame`, returning its id (existing or fresh).
    pub fn intern(&mut self, frame: Frame) -> FrameId {
        if let Some(&id) = self.index.get(&frame) {
            return id;
        }
        let id = FrameId(self.frames.len() as u32);
        self.frames.push(frame.clone());
        self.index.insert(frame, id);
        id
    }

    /// Convenience for [`FrameTable::intern`] with [`Frame::new`].
    pub fn intern_new(&mut self, symbol: &str, file: &str, line: u32) -> FrameId {
        self.intern(Frame::new(symbol, file, line))
    }

    /// Resolves an id back to its frame.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: FrameId) -> &Frame {
        &self.frames[id.0 as usize]
    }

    /// Returns the number of interned frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Iterates over `(id, frame)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (FrameId, &Frame)> {
        self.frames
            .iter()
            .enumerate()
            .map(|(i, f)| (FrameId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_name_derivation() {
        let f = Frame::new("android.hardware.Camera.open", "Camera.java", 120);
        assert_eq!(f.class_name, "android.hardware.Camera");
        assert_eq!(f.method(), "open");
    }

    #[test]
    fn classless_symbol_is_its_own_class() {
        let f = Frame::new("mainloop", "main.c", 1);
        assert_eq!(f.class_name, "mainloop");
        assert_eq!(f.method(), "mainloop");
    }

    #[test]
    fn interning_deduplicates() {
        let mut t = FrameTable::new();
        let a = t.intern_new("a.B.c", "B.java", 10);
        let b = t.intern_new("a.B.c", "B.java", 10);
        let c = t.intern_new("a.B.c", "B.java", 11);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).symbol, "a.B.c");
    }

    #[test]
    fn iteration_preserves_order() {
        let mut t = FrameTable::new();
        let ids: Vec<FrameId> = (0..5)
            .map(|i| t.intern_new(&format!("pkg.C.m{i}"), "C.java", i))
            .collect();
        let seen: Vec<FrameId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, seen);
    }
}
