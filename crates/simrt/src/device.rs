//! Device profiles for the paper's three test phones.
//!
//! The paper verifies its correlation analysis and thresholds on an LG
//! V10, a Nexus 5, and a Galaxy S3 and argues the results transfer
//! because the decisive events are produced by kernel scheduling rather
//! than a particular CPU (Section 3.3.1, "Generality of the Analysis").
//! These profiles vary what plausibly differs between the devices — core
//! count, scheduler timeslice, and background-housekeeping cadence — so
//! the generality claim can be tested rather than assumed.

use crate::simulator::SimConfig;
use crate::time::{MICROS, MILLIS, SECONDS};

/// A named device configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Marketing name.
    pub name: &'static str,
    /// CPU cores available to the app.
    pub cores: usize,
    /// Scheduler round-robin timeslice, ns.
    pub timeslice_ns: u64,
    /// Background housekeeping period per core, ns.
    pub system_period_ns: u64,
    /// Housekeeping burst length, ns.
    pub system_burst_ns: u64,
}

impl DeviceProfile {
    /// The paper's primary device (results presented for it).
    pub fn lg_v10() -> DeviceProfile {
        DeviceProfile {
            name: "LG V10",
            cores: 2,
            timeslice_ns: 10 * MILLIS,
            system_period_ns: 6 * MILLIS,
            system_burst_ns: 350 * MICROS,
        }
    }

    /// A mid-2010s reference device: fewer background interruptions,
    /// snappier scheduler.
    pub fn nexus_5() -> DeviceProfile {
        DeviceProfile {
            name: "Nexus 5",
            cores: 2,
            timeslice_ns: 8 * MILLIS,
            system_period_ns: 8 * MILLIS,
            system_burst_ns: 300 * MICROS,
        }
    }

    /// An older, busier device: coarser timeslice, heavier housekeeping.
    pub fn galaxy_s3() -> DeviceProfile {
        DeviceProfile {
            name: "Galaxy S3",
            cores: 2,
            timeslice_ns: 12 * MILLIS,
            system_period_ns: 4 * MILLIS,
            system_burst_ns: 450 * MICROS,
        }
    }

    /// All three study devices.
    pub fn all() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::lg_v10(),
            DeviceProfile::nexus_5(),
            DeviceProfile::galaxy_s3(),
        ]
    }

    /// Builds a simulator configuration for this device.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        SimConfig {
            seed,
            cores: self.cores,
            timeslice_ns: self.timeslice_ns,
            system_period_ns: self.system_period_ns,
            system_burst_ns: self.system_burst_ns,
            workers: 2,
            max_sim_ns: 48 * 3600 * SECONDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_distinct_devices() {
        let all = DeviceProfile::all();
        assert_eq!(all.len(), 3);
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn lg_v10_matches_the_default_config() {
        // The defaults used throughout the reproduction are the LG V10,
        // like the paper's presented results.
        let lg = DeviceProfile::lg_v10().sim_config(42);
        let def = SimConfig::default();
        assert_eq!(lg.cores, def.cores);
        assert_eq!(lg.timeslice_ns, def.timeslice_ns);
        assert_eq!(lg.system_period_ns, def.system_period_ns);
        assert_eq!(lg.system_burst_ns, def.system_burst_ns);
    }

    #[test]
    fn sim_config_carries_the_seed() {
        assert_eq!(DeviceProfile::nexus_5().sim_config(7).seed, 7);
    }
}
