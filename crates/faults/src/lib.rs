//! # hd-faults — deterministic fault injection for the monitoring stack
//!
//! On real phones the observation layer Hang Doctor depends on is
//! unreliable: `perf_event_open` reads fail under PMU contention, stack
//! samples arrive late or truncated when the sampling thread is starved,
//! and timers skew against the monotonic clock. This crate models those
//! failures as a **seed-deterministic fault schedule** so every layer of
//! the pipeline can be tested — and hardened — against them without
//! giving up reproducibility.
//!
//! ## Determinism
//!
//! A [`FaultPlan`] owns its own [`SimRng`] stream, seeded from
//! `(root_seed, job index)` through [`fault_seed`] exactly like fleet
//! device seeds. Two consequences:
//!
//! * the fault schedule of a job depends on nothing but the seed pair and
//!   the sequence of injection points the job reaches — never on thread
//!   count or scheduling, so chaos fleets merge byte-identically;
//! * a plan whose rates are all zero draws **nothing** from its RNG and
//!   mutates no state, so a faults-disabled run is bit-exact with a build
//!   that has no fault layer at all.
//!
//! ## Categories
//!
//! | category | models | degradation path |
//! |---|---|---|
//! | counter-read failure | `perf_event_open`/read errors | bounded retry with backoff, then partial S-Check |
//! | stale counter | snapshot captured partway through the window | silent (quantified by the chaos differential) |
//! | dropped sample | sampler starved, sample lost | Diagnoser aborts lossy sessions and re-arms |
//! | truncated sample | partial stack unwind | occurrence-factor analysis absorbs it |
//! | sampler latency | late sampler start | window simply starts late |
//! | clock jitter | monotonic timer skew | watchdog/sampler deadlines shift |

use hd_simrt::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// The kinds of fault the plan can inject, one per monitoring failure
/// mode observed on real devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultCategory {
    /// A performance-counter read fails outright.
    CounterRead,
    /// A counter read succeeds but returns a stale snapshot that misses
    /// the tail of the measurement window.
    StaleCounter,
    /// A stack sample is attempted but lost.
    DroppedSample,
    /// A stack sample arrives with only the outermost frames.
    TruncatedSample,
    /// The sampler starts late after being armed.
    SamplerLatency,
    /// A monitoring timer deadline skews against the monotonic clock.
    ClockJitter,
}

impl FaultCategory {
    /// Every category, in declaration order.
    pub const ALL: [FaultCategory; 6] = [
        FaultCategory::CounterRead,
        FaultCategory::StaleCounter,
        FaultCategory::DroppedSample,
        FaultCategory::TruncatedSample,
        FaultCategory::SamplerLatency,
        FaultCategory::ClockJitter,
    ];

    /// Stable kebab-case name (used in reports and the differential
    /// harness).
    pub fn name(self) -> &'static str {
        match self {
            FaultCategory::CounterRead => "counter-read",
            FaultCategory::StaleCounter => "stale-counter",
            FaultCategory::DroppedSample => "dropped-sample",
            FaultCategory::TruncatedSample => "truncated-sample",
            FaultCategory::SamplerLatency => "sampler-latency",
            FaultCategory::ClockJitter => "clock-jitter",
        }
    }
}

/// Per-category injection probabilities, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability that one counter read attempt fails.
    pub counter_read_failure: f64,
    /// Probability that a successful counter read is stale.
    pub stale_counter: f64,
    /// Probability that a stack sample is dropped.
    pub dropped_sample: f64,
    /// Probability that a stack sample is truncated.
    pub truncated_sample: f64,
    /// Probability that a sampler window starts late.
    pub sampler_latency: f64,
    /// Probability that a timer deadline is jittered.
    pub clock_jitter: f64,
}

impl FaultRates {
    /// Returns the rate configured for `category`.
    pub fn rate(&self, category: FaultCategory) -> f64 {
        match category {
            FaultCategory::CounterRead => self.counter_read_failure,
            FaultCategory::StaleCounter => self.stale_counter,
            FaultCategory::DroppedSample => self.dropped_sample,
            FaultCategory::TruncatedSample => self.truncated_sample,
            FaultCategory::SamplerLatency => self.sampler_latency,
            FaultCategory::ClockJitter => self.clock_jitter,
        }
    }

    fn set_rate(&mut self, category: FaultCategory, rate: f64) {
        let r = match category {
            FaultCategory::CounterRead => &mut self.counter_read_failure,
            FaultCategory::StaleCounter => &mut self.stale_counter,
            FaultCategory::DroppedSample => &mut self.dropped_sample,
            FaultCategory::TruncatedSample => &mut self.truncated_sample,
            FaultCategory::SamplerLatency => &mut self.sampler_latency,
            FaultCategory::ClockJitter => &mut self.clock_jitter,
        };
        *r = rate.clamp(0.0, 1.0);
    }
}

/// Fault-injection configuration: rates plus the magnitude parameters of
/// the individual fault kinds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-category injection rates.
    pub rates: FaultRates,
    /// A stale snapshot misses up to this fraction of the measurement
    /// window (the served delta is scaled by `1 - U(0, max)`).
    pub max_stale_fraction: f64,
    /// Maximum extra delay before a late sampler window starts, ns.
    pub max_sampler_latency_ns: u64,
    /// Maximum absolute timer-deadline skew, ns.
    pub max_clock_jitter_ns: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            rates: FaultRates::default(),
            max_stale_fraction: 0.6,
            max_sampler_latency_ns: 20_000_000, // 20 ms
            max_clock_jitter_ns: 4_000_000,     // 4 ms
        }
    }
}

impl FaultConfig {
    /// A configuration that injects nothing (the production default).
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// Chaos mode: every category injects at `rate` (clamped to
    /// `[0, 1]`), with default magnitudes.
    pub fn chaos(rate: f64) -> FaultConfig {
        let rate = rate.clamp(0.0, 1.0);
        FaultConfig {
            rates: FaultRates {
                counter_read_failure: rate,
                stale_counter: rate,
                dropped_sample: rate,
                truncated_sample: rate,
                sampler_latency: rate,
                clock_jitter: rate,
            },
            ..FaultConfig::default()
        }
    }

    /// A configuration that injects only `category`, at `rate` — the
    /// building block of the chaos-vs-clean differential harness.
    pub fn only(category: FaultCategory, rate: f64) -> FaultConfig {
        let mut cfg = FaultConfig::none();
        cfg.rates.set_rate(category, rate);
        cfg
    }

    /// Whether any category has a positive rate.
    pub fn enabled(&self) -> bool {
        FaultCategory::ALL.iter().any(|&c| self.rates.rate(c) > 0.0)
    }
}

/// Per-category fault and recovery counts for one device run (or, after
/// [`FaultTally::merge`], for a whole fleet).
///
/// "Injected" counters record faults the plan actually delivered;
/// "recovery" counters record the graceful-degradation actions the
/// detector took in response. Silent faults (stale counters, truncated
/// samples) have no recovery counter — their cost is visible only in the
/// chaos-vs-clean differential.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTally {
    /// Counter read attempts that failed.
    pub counter_read_failures: u64,
    /// Retry attempts made after a failed read.
    pub counter_read_retries: u64,
    /// Reads salvaged by at least one retry.
    pub counter_reads_recovered: u64,
    /// Reads abandoned after the retry budget ran out.
    pub counter_reads_lost: u64,
    /// Stale counter snapshots served.
    pub stale_snapshots: u64,
    /// Stack samples dropped.
    pub samples_dropped: u64,
    /// Stack samples truncated.
    pub samples_truncated: u64,
    /// Sampler windows that started late.
    pub sampler_delays: u64,
    /// Timer deadlines that were jittered.
    pub clock_jitters: u64,
    /// S-Checker verdicts issued from a partial counter set.
    pub degraded_verdicts: u64,
    /// S-Checker evaluations abandoned because no counter read survived.
    pub checks_abandoned: u64,
    /// Diagnosis sessions aborted (and re-armed) for losing too many
    /// samples.
    pub sessions_aborted: u64,
}

impl FaultTally {
    /// Adds another tally into this one (associative and commutative, so
    /// fleet merges are order-independent).
    pub fn merge(&mut self, other: &FaultTally) {
        self.counter_read_failures += other.counter_read_failures;
        self.counter_read_retries += other.counter_read_retries;
        self.counter_reads_recovered += other.counter_reads_recovered;
        self.counter_reads_lost += other.counter_reads_lost;
        self.stale_snapshots += other.stale_snapshots;
        self.samples_dropped += other.samples_dropped;
        self.samples_truncated += other.samples_truncated;
        self.sampler_delays += other.sampler_delays;
        self.clock_jitters += other.clock_jitters;
        self.degraded_verdicts += other.degraded_verdicts;
        self.checks_abandoned += other.checks_abandoned;
        self.sessions_aborted += other.sessions_aborted;
    }

    /// Total faults injected across all categories.
    pub fn injected(&self) -> u64 {
        self.counter_read_failures
            + self.stale_snapshots
            + self.samples_dropped
            + self.samples_truncated
            + self.sampler_delays
            + self.clock_jitters
    }

    /// Total graceful-degradation actions taken in response.
    pub fn recovered(&self) -> u64 {
        self.counter_reads_recovered
            + self.degraded_verdicts
            + self.checks_abandoned
            + self.sessions_aborted
    }

    /// Whether nothing was injected or recovered.
    pub fn is_empty(&self) -> bool {
        *self == FaultTally::default()
    }
}

/// Derives the fault-plan seed of the job with stable index `job`.
///
/// Same SplitMix64 scramble as fleet device seeds but domain-separated
/// by a constant, so a job's fault schedule is independent of its
/// simulator stream while still being a pure function of
/// `(root_seed, job)`.
pub fn fault_seed(root_seed: u64, job: u64) -> u64 {
    let mut z = (root_seed ^ 0xFA17_5EED_0D15_EA5Eu64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(job.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-job fault schedule: a configuration, a private RNG stream,
/// and the running tally of what was injected and recovered.
///
/// Every injection-point method is a no-op (and draws nothing) when the
/// corresponding rate is zero, so a disabled plan is behaviorally
/// invisible.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
    /// Running fault/recovery counts. Public so the detector can record
    /// its recovery actions (degraded verdicts, aborted sessions) into
    /// the same ledger the injection points write.
    pub tally: FaultTally,
}

impl FaultPlan {
    /// Creates a plan with an explicit seed.
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultPlan {
        FaultPlan {
            cfg,
            rng: SimRng::seed_from_u64(seed),
            tally: FaultTally::default(),
        }
    }

    /// Creates the plan of fleet job `job` under `root_seed` — the
    /// deterministic derivation every chaos fleet uses.
    pub fn for_job(cfg: FaultConfig, root_seed: u64, job: u64) -> FaultPlan {
        FaultPlan::new(cfg, fault_seed(root_seed, job))
    }

    /// A plan that never injects anything.
    pub fn disabled() -> FaultPlan {
        FaultPlan::new(FaultConfig::none(), 0)
    }

    /// Whether any fault category is active.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The configuration this plan runs under.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Snapshot of the current tally.
    pub fn tally(&self) -> FaultTally {
        self.tally
    }

    fn fires(&mut self, rate: f64) -> bool {
        // Zero-rate categories must not consume RNG state: a plan with a
        // category disabled produces the same schedule for the others.
        rate > 0.0 && self.rng.chance(rate)
    }

    /// Injection point: does this counter read attempt fail?
    pub fn counter_read_fails(&mut self) -> bool {
        if self.fires(self.cfg.rates.counter_read_failure) {
            self.tally.counter_read_failures += 1;
            true
        } else {
            false
        }
    }

    /// Injection point: scale factor for a stale counter snapshot, if
    /// this read is served stale. The factor is the fraction of the
    /// window the snapshot actually covered.
    pub fn stale_fraction(&mut self) -> Option<f64> {
        if self.fires(self.cfg.rates.stale_counter) {
            self.tally.stale_snapshots += 1;
            let missing = self.rng.uniform_f64(0.0, self.cfg.max_stale_fraction);
            Some(1.0 - missing)
        } else {
            None
        }
    }

    /// Injection point: is this stack sample dropped?
    pub fn drop_sample(&mut self) -> bool {
        if self.fires(self.cfg.rates.dropped_sample) {
            self.tally.samples_dropped += 1;
            true
        } else {
            false
        }
    }

    /// Injection point: is this stack sample truncated?
    pub fn truncate_sample(&mut self) -> bool {
        if self.fires(self.cfg.rates.truncated_sample) {
            self.tally.samples_truncated += 1;
            true
        } else {
            false
        }
    }

    /// Injection point: extra start-up latency of a sampler window, if
    /// this one starts late.
    pub fn sampler_latency_ns(&mut self) -> Option<u64> {
        if self.fires(self.cfg.rates.sampler_latency) {
            self.tally.sampler_delays += 1;
            Some(
                self.rng
                    .uniform_u64(1, self.cfg.max_sampler_latency_ns.max(1)),
            )
        } else {
            None
        }
    }

    /// Injection point: skews a timer deadline against the monotonic
    /// clock, returning the (possibly unchanged) deadline.
    pub fn jitter_deadline(&mut self, at: SimTime) -> SimTime {
        if self.fires(self.cfg.rates.clock_jitter) {
            self.tally.clock_jitters += 1;
            let max = self.cfg.max_clock_jitter_ns.max(1);
            let magnitude = self.rng.uniform_u64(1, max);
            if self.rng.chance(0.5) {
                SimTime(at.0.saturating_add(magnitude))
            } else {
                SimTime(at.0.saturating_sub(magnitude))
            }
        } else {
            at
        }
    }
}

// ---------------------------------------------------------------------------
// Network faults (telemetry transport)
// ---------------------------------------------------------------------------

/// The kinds of fault the telemetry transport can suffer between a
/// device and the ingestion backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetFaultCategory {
    /// The connection drops before a frame is delivered; the uploader
    /// must reconnect and resend.
    ConnectionDrop,
    /// A frame is delivered late.
    DeliveryDelay,
    /// A frame is delivered twice; idempotent ingest must absorb it.
    DuplicateFrame,
}

impl NetFaultCategory {
    /// Every category, in declaration order.
    pub const ALL: [NetFaultCategory; 3] = [
        NetFaultCategory::ConnectionDrop,
        NetFaultCategory::DeliveryDelay,
        NetFaultCategory::DuplicateFrame,
    ];

    /// Stable kebab-case name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            NetFaultCategory::ConnectionDrop => "connection-drop",
            NetFaultCategory::DeliveryDelay => "delivery-delay",
            NetFaultCategory::DuplicateFrame => "duplicate-frame",
        }
    }
}

/// Per-category network fault injection probabilities, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetFaultRates {
    /// Probability that the connection drops before a batch is sent.
    pub connection_drop: f64,
    /// Probability that a batch is delivered late.
    pub delivery_delay: f64,
    /// Probability that a batch frame is sent twice.
    pub duplicate_frame: f64,
}

/// Network fault-injection configuration for the telemetry transport.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetFaultConfig {
    /// Per-category injection rates.
    pub rates: NetFaultRates,
    /// Maximum extra delivery delay, ns (kept small so chaos tests stay
    /// fast; the delay is actually slept by the uploader).
    pub max_delivery_delay_ns: u64,
}

impl Default for NetFaultConfig {
    fn default() -> Self {
        NetFaultConfig {
            rates: NetFaultRates::default(),
            max_delivery_delay_ns: 2_000_000, // 2 ms
        }
    }
}

impl NetFaultConfig {
    /// A configuration that injects nothing (the production default).
    pub fn none() -> NetFaultConfig {
        NetFaultConfig::default()
    }

    /// Chaos mode: every category injects at `rate` (clamped to
    /// `[0, 1]`).
    pub fn chaos(rate: f64) -> NetFaultConfig {
        let rate = rate.clamp(0.0, 1.0);
        NetFaultConfig {
            rates: NetFaultRates {
                connection_drop: rate,
                delivery_delay: rate,
                duplicate_frame: rate,
            },
            ..NetFaultConfig::default()
        }
    }

    /// Whether any category has a positive rate.
    pub fn enabled(&self) -> bool {
        self.rates.connection_drop > 0.0
            || self.rates.delivery_delay > 0.0
            || self.rates.duplicate_frame > 0.0
    }
}

/// Per-category network fault and recovery counts for one uploader (or,
/// after [`NetFaultTally::merge`], for a whole fleet's telemetry path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetFaultTally {
    /// Connections dropped before a batch went out.
    pub connections_dropped: u64,
    /// Batch deliveries that were delayed.
    pub deliveries_delayed: u64,
    /// Batch frames deliberately sent twice.
    pub frames_duplicated: u64,
    /// Upload attempts repeated after a drop or a NACK.
    pub upload_retries: u64,
    /// Retryable NACKs received from the server (queue-full
    /// backpressure).
    pub nacks_received: u64,
    /// Duplicate deliveries the server's idempotent ingest absorbed.
    pub duplicates_absorbed: u64,
}

impl NetFaultTally {
    /// Adds another tally into this one (associative and commutative).
    pub fn merge(&mut self, other: &NetFaultTally) {
        self.connections_dropped += other.connections_dropped;
        self.deliveries_delayed += other.deliveries_delayed;
        self.frames_duplicated += other.frames_duplicated;
        self.upload_retries += other.upload_retries;
        self.nacks_received += other.nacks_received;
        self.duplicates_absorbed += other.duplicates_absorbed;
    }

    /// Total network faults injected.
    pub fn injected(&self) -> u64 {
        self.connections_dropped + self.deliveries_delayed + self.frames_duplicated
    }

    /// Whether nothing was injected or recovered.
    pub fn is_empty(&self) -> bool {
        *self == NetFaultTally::default()
    }
}

/// Derives the network fault-plan seed of the uploader with stable
/// index `device` — the same SplitMix64 scramble as [`fault_seed`] but
/// domain-separated by a different constant, so transport faults are
/// independent of both the simulator stream and the monitoring fault
/// schedule.
pub fn net_fault_seed(root_seed: u64, device: u64) -> u64 {
    let mut z = (root_seed ^ 0x7E1E_C0DE_5EED_F00Du64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(device.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-uploader network fault schedule. All fault decisions for one
/// batch are drawn **before** the first send attempt, so the schedule
/// depends only on `(seed, batch sequence)` — never on server timing,
/// NACKs, or retry counts.
#[derive(Debug)]
pub struct NetFaultPlan {
    cfg: NetFaultConfig,
    rng: SimRng,
    /// Running fault/recovery counts. Public so the uploader can record
    /// its recovery actions (retries, NACKs) into the same ledger.
    pub tally: NetFaultTally,
}

impl NetFaultPlan {
    /// Creates a plan with an explicit seed.
    pub fn new(cfg: NetFaultConfig, seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            cfg,
            rng: SimRng::seed_from_u64(seed),
            tally: NetFaultTally::default(),
        }
    }

    /// Creates the plan of the uploader with stable index `device`
    /// under `root_seed`.
    pub fn for_device(cfg: NetFaultConfig, root_seed: u64, device: u64) -> NetFaultPlan {
        NetFaultPlan::new(cfg, net_fault_seed(root_seed, device))
    }

    /// A plan that never injects anything.
    pub fn disabled() -> NetFaultPlan {
        NetFaultPlan::new(NetFaultConfig::none(), 0)
    }

    /// Whether any fault category is active.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The configuration this plan runs under.
    pub fn config(&self) -> &NetFaultConfig {
        &self.cfg
    }

    /// Snapshot of the current tally.
    pub fn tally(&self) -> NetFaultTally {
        self.tally
    }

    fn fires(&mut self, rate: f64) -> bool {
        // Zero-rate categories must not consume RNG state (see
        // `FaultPlan::fires`).
        rate > 0.0 && self.rng.chance(rate)
    }

    /// Draws every fault decision for the next batch. Called exactly
    /// once per batch, before the first send attempt.
    pub fn next_batch(&mut self) -> BatchFaults {
        let drop_connection = if self.fires(self.cfg.rates.connection_drop) {
            self.tally.connections_dropped += 1;
            true
        } else {
            false
        };
        let delay_ns = if self.fires(self.cfg.rates.delivery_delay) {
            self.tally.deliveries_delayed += 1;
            Some(
                self.rng
                    .uniform_u64(1, self.cfg.max_delivery_delay_ns.max(1)),
            )
        } else {
            None
        };
        let duplicate = if self.fires(self.cfg.rates.duplicate_frame) {
            self.tally.frames_duplicated += 1;
            true
        } else {
            false
        };
        BatchFaults {
            drop_connection,
            delay_ns,
            duplicate,
        }
    }
}

/// The fault decisions for one upload batch, drawn up front by
/// [`NetFaultPlan::next_batch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchFaults {
    /// Drop (and re-establish) the connection before sending.
    pub drop_connection: bool,
    /// Sleep this long before sending, if set.
    pub delay_ns: Option<u64>,
    /// Send the frame twice.
    pub duplicate: bool,
}

// ---------------------------------------------------------------------------
// Control-plane frame faults (hd-control transport)
// ---------------------------------------------------------------------------

/// The kinds of fault a control-plane frame can suffer between the
/// server and a device's `ControlAgent`. Mirrors [`NetFaultCategory`]
/// but lives in its own family: control traffic is low-rate and
/// bidirectional, and its chaos schedule must never perturb the upload
/// path's RNG streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CtrlFaultCategory {
    /// The frame is lost in flight; the sender must reconnect and
    /// resend.
    FrameLoss,
    /// The frame is delivered late.
    FrameDelay,
    /// The frame is delivered twice; control handling must be
    /// idempotent.
    FrameDuplicate,
}

impl CtrlFaultCategory {
    /// Every category, in declaration order.
    pub const ALL: [CtrlFaultCategory; 3] = [
        CtrlFaultCategory::FrameLoss,
        CtrlFaultCategory::FrameDelay,
        CtrlFaultCategory::FrameDuplicate,
    ];

    /// Stable kebab-case name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            CtrlFaultCategory::FrameLoss => "frame-loss",
            CtrlFaultCategory::FrameDelay => "frame-delay",
            CtrlFaultCategory::FrameDuplicate => "frame-duplicate",
        }
    }
}

/// Per-category control-frame fault probabilities, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CtrlFaultRates {
    /// Probability that a control frame is lost before delivery.
    pub frame_loss: f64,
    /// Probability that a control frame is delivered late.
    pub frame_delay: f64,
    /// Probability that a control frame is delivered twice.
    pub frame_duplicate: f64,
}

/// Control-frame fault-injection configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CtrlFaultConfig {
    /// Per-category injection rates.
    pub rates: CtrlFaultRates,
    /// Maximum extra delivery delay, ns (actually slept by the control
    /// client, so kept small).
    pub max_frame_delay_ns: u64,
}

impl Default for CtrlFaultConfig {
    fn default() -> Self {
        CtrlFaultConfig {
            rates: CtrlFaultRates::default(),
            max_frame_delay_ns: 2_000_000, // 2 ms
        }
    }
}

impl CtrlFaultConfig {
    /// A configuration that injects nothing (the production default).
    pub fn none() -> CtrlFaultConfig {
        CtrlFaultConfig::default()
    }

    /// Chaos mode: every category injects at `rate` (clamped to
    /// `[0, 1]`).
    pub fn chaos(rate: f64) -> CtrlFaultConfig {
        let rate = rate.clamp(0.0, 1.0);
        CtrlFaultConfig {
            rates: CtrlFaultRates {
                frame_loss: rate,
                frame_delay: rate,
                frame_duplicate: rate,
            },
            ..CtrlFaultConfig::default()
        }
    }

    /// A configuration that injects only `category`, at `rate`.
    pub fn only(category: CtrlFaultCategory, rate: f64) -> CtrlFaultConfig {
        let rate = rate.clamp(0.0, 1.0);
        let mut cfg = CtrlFaultConfig::none();
        match category {
            CtrlFaultCategory::FrameLoss => cfg.rates.frame_loss = rate,
            CtrlFaultCategory::FrameDelay => cfg.rates.frame_delay = rate,
            CtrlFaultCategory::FrameDuplicate => cfg.rates.frame_duplicate = rate,
        }
        cfg
    }

    /// Whether any category has a positive rate.
    pub fn enabled(&self) -> bool {
        self.rates.frame_loss > 0.0
            || self.rates.frame_delay > 0.0
            || self.rates.frame_duplicate > 0.0
    }
}

/// Control-frame fault and recovery counts for one control session (or,
/// after [`CtrlFaultTally::merge`], a whole rollout).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlFaultTally {
    /// Control frames lost before delivery (forcing a resend).
    pub frames_lost: u64,
    /// Control frames delivered late.
    pub frames_delayed: u64,
    /// Control frames deliberately delivered twice.
    pub frames_duplicated: u64,
    /// Resends after a lost frame.
    pub resends: u64,
    /// Duplicate deliveries the idempotent handler absorbed.
    pub duplicates_absorbed: u64,
}

impl CtrlFaultTally {
    /// Adds another tally into this one (associative and commutative).
    pub fn merge(&mut self, other: &CtrlFaultTally) {
        self.frames_lost += other.frames_lost;
        self.frames_delayed += other.frames_delayed;
        self.frames_duplicated += other.frames_duplicated;
        self.resends += other.resends;
        self.duplicates_absorbed += other.duplicates_absorbed;
    }

    /// Total control-frame faults injected.
    pub fn injected(&self) -> u64 {
        self.frames_lost + self.frames_delayed + self.frames_duplicated
    }

    /// Whether nothing was injected or recovered.
    pub fn is_empty(&self) -> bool {
        *self == CtrlFaultTally::default()
    }
}

/// Derives the control-frame fault seed of the session with stable
/// index `device` — the same SplitMix64 scramble as [`net_fault_seed`]
/// under yet another domain constant, so control chaos is independent of
/// the monitoring, transport, and node-crash streams.
pub fn ctrl_fault_seed(root_seed: u64, device: u64) -> u64 {
    let mut z = (root_seed ^ 0xC0DE_C0DE_5EED_0FF1u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(device.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-session control-frame fault schedule. All decisions for one
/// frame are drawn **before** the first delivery attempt, so the
/// schedule depends only on `(seed, frame sequence)` — never on server
/// timing or retries.
#[derive(Debug)]
pub struct CtrlFaultPlan {
    cfg: CtrlFaultConfig,
    rng: SimRng,
    /// Running fault/recovery counts. Public so the control client can
    /// record its recovery actions (resends, absorbed duplicates) into
    /// the same ledger.
    pub tally: CtrlFaultTally,
}

impl CtrlFaultPlan {
    /// Creates a plan with an explicit seed.
    pub fn new(cfg: CtrlFaultConfig, seed: u64) -> CtrlFaultPlan {
        CtrlFaultPlan {
            cfg,
            rng: SimRng::seed_from_u64(seed),
            tally: CtrlFaultTally::default(),
        }
    }

    /// Creates the plan of the control session with stable index
    /// `device` under `root_seed`.
    pub fn for_device(cfg: CtrlFaultConfig, root_seed: u64, device: u64) -> CtrlFaultPlan {
        CtrlFaultPlan::new(cfg, ctrl_fault_seed(root_seed, device))
    }

    /// A plan that never injects anything.
    pub fn disabled() -> CtrlFaultPlan {
        CtrlFaultPlan::new(CtrlFaultConfig::none(), 0)
    }

    /// Whether any fault category is active.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The configuration this plan runs under.
    pub fn config(&self) -> &CtrlFaultConfig {
        &self.cfg
    }

    /// Snapshot of the current tally.
    pub fn tally(&self) -> CtrlFaultTally {
        self.tally
    }

    fn fires(&mut self, rate: f64) -> bool {
        // Zero-rate categories must not consume RNG state (see
        // `FaultPlan::fires`).
        rate > 0.0 && self.rng.chance(rate)
    }

    /// Draws every fault decision for the next control frame. Called
    /// exactly once per frame, before the first delivery attempt.
    pub fn next_frame(&mut self) -> FrameFaults {
        let drop = if self.fires(self.cfg.rates.frame_loss) {
            self.tally.frames_lost += 1;
            true
        } else {
            false
        };
        let delay_ns = if self.fires(self.cfg.rates.frame_delay) {
            self.tally.frames_delayed += 1;
            Some(self.rng.uniform_u64(1, self.cfg.max_frame_delay_ns.max(1)))
        } else {
            None
        };
        let duplicate = if self.fires(self.cfg.rates.frame_duplicate) {
            self.tally.frames_duplicated += 1;
            true
        } else {
            false
        };
        FrameFaults {
            drop,
            delay_ns,
            duplicate,
        }
    }
}

/// The fault decisions for one control frame, drawn up front by
/// [`CtrlFaultPlan::next_frame`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameFaults {
    /// Lose the frame (and the connection) before delivery; the sender
    /// resends.
    pub drop: bool,
    /// Sleep this long before delivering, if set.
    pub delay_ns: Option<u64>,
    /// Deliver the frame twice.
    pub duplicate: bool,
}

// ---------------------------------------------------------------------------
// Node crashes (telemetry cluster chaos)
// ---------------------------------------------------------------------------

/// Stable kebab-case name of the node-crash fault category. It lives
/// outside [`NetFaultCategory`]/[`NetFaultTally`] on purpose: those
/// serialize into pinned chaos fixtures, and node crashes are a
/// cluster-harness fault (a whole server dies and restarts from its
/// WAL), not a per-uploader transport fault.
pub const NODE_CRASH_CATEGORY: &str = "node-crash";

/// Derives the node-crash schedule seed for a cluster — the same
/// SplitMix64 scramble as [`net_fault_seed`] under yet another domain
/// constant, so crash schedules are independent of every transport and
/// monitoring fault stream (the uploaders' RNG draws must not shift
/// when crashes are enabled).
pub fn node_crash_seed(root_seed: u64, nodes: u64) -> u64 {
    let mut z = (root_seed ^ 0xC7A5_110D_E5EE_DA0Bu64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(nodes.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic node-crash schedule for a cluster run whose uploads
/// proceed in waves. Every decision — whether a crash follows a wave,
/// and which node dies — is drawn up front at construction, so the
/// schedule is a pure function of `(root_seed, nodes, waves, rate)` and
/// can never be perturbed by upload timing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeCrashPlan {
    /// `crashes[w]` = node killed (and restarted) after wave `w`.
    crashes: Vec<Option<usize>>,
}

impl NodeCrashPlan {
    /// Draws the schedule: after each of the first `waves - 1` waves, a
    /// crash fires with probability `rate` and kills a uniformly chosen
    /// node. Nothing crashes after the final wave (there would be no
    /// later upload to observe the recovery).
    pub fn for_cluster(rate: f64, nodes: usize, waves: usize, root_seed: u64) -> NodeCrashPlan {
        let rate = rate.clamp(0.0, 1.0);
        let mut rng = SimRng::seed_from_u64(node_crash_seed(root_seed, nodes as u64));
        let mut crashes = vec![None; waves];
        if nodes > 0 && waves > 1 {
            for slot in crashes.iter_mut().take(waves - 1) {
                // Zero-rate draws consume no RNG state (same contract
                // as the other fault plans).
                if rate > 0.0 && rng.chance(rate) {
                    *slot = Some(rng.uniform_u64(0, nodes as u64 - 1) as usize);
                }
            }
        }
        NodeCrashPlan { crashes }
    }

    /// A pinned schedule: kill exactly `node` after wave `wave` —
    /// what the CI cluster smoke uses so the log always shows a real
    /// kill-and-restart.
    pub fn pinned(waves: usize, wave: usize, node: usize) -> NodeCrashPlan {
        let mut crashes = vec![None; waves];
        if wave < waves {
            crashes[wave] = Some(node);
        }
        NodeCrashPlan { crashes }
    }

    /// A schedule that never crashes anything.
    pub fn none(waves: usize) -> NodeCrashPlan {
        NodeCrashPlan {
            crashes: vec![None; waves],
        }
    }

    /// Number of upload waves the schedule spans.
    pub fn waves(&self) -> usize {
        self.crashes.len()
    }

    /// The node to kill (and restart) after wave `wave`, if any.
    pub fn crash_after(&self, wave: usize) -> Option<usize> {
        self.crashes.get(wave).copied().flatten()
    }

    /// Total crashes the schedule will inject.
    pub fn crash_count(&self) -> usize {
        self.crashes.iter().filter(|c| c.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives every injection point once and returns a fingerprint of
    /// the decisions.
    fn drive(plan: &mut FaultPlan, rounds: usize) -> Vec<u64> {
        let mut fp = Vec::new();
        for i in 0..rounds {
            fp.push(plan.counter_read_fails() as u64);
            fp.push(plan.stale_fraction().map(|f| f.to_bits()).unwrap_or(0));
            fp.push(plan.drop_sample() as u64);
            fp.push(plan.truncate_sample() as u64);
            fp.push(plan.sampler_latency_ns().unwrap_or(0));
            fp.push(plan.jitter_deadline(SimTime(i as u64 * 1_000_000)).0);
        }
        fp
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::for_job(FaultConfig::chaos(0.3), 7, 4);
        let mut b = FaultPlan::for_job(FaultConfig::chaos(0.3), 7, 4);
        assert_eq!(drive(&mut a, 200), drive(&mut b, 200));
        assert_eq!(a.tally(), b.tally());
    }

    #[test]
    fn different_jobs_differ() {
        let mut a = FaultPlan::for_job(FaultConfig::chaos(0.5), 7, 0);
        let mut b = FaultPlan::for_job(FaultConfig::chaos(0.5), 7, 1);
        assert_ne!(drive(&mut a, 200), drive(&mut b, 200));
    }

    #[test]
    fn disabled_plan_is_inert() {
        let mut plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        for _ in 0..100 {
            assert!(!plan.counter_read_fails());
            assert!(plan.stale_fraction().is_none());
            assert!(!plan.drop_sample());
            assert!(!plan.truncate_sample());
            assert!(plan.sampler_latency_ns().is_none());
            assert_eq!(plan.jitter_deadline(SimTime(42)), SimTime(42));
        }
        assert!(plan.tally().is_empty());
    }

    #[test]
    fn zero_rate_category_does_not_perturb_others() {
        // Disabling one category must leave the schedule of the others
        // untouched (no RNG draws on the zero-rate path).
        let mut full = FaultConfig::chaos(0.4);
        full.rates.stale_counter = 0.0;
        let mut only = FaultConfig::none();
        only.rates.counter_read_failure = 0.4;
        let mut a = FaultPlan::new(full, 99);
        let mut b = FaultPlan::new(only, 99);
        let da: Vec<bool> = (0..300).map(|_| a.counter_read_fails()).collect();
        let db: Vec<bool> = (0..300).map(|_| b.counter_read_fails()).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn rates_are_clamped() {
        let cfg = FaultConfig::chaos(7.0);
        assert_eq!(cfg.rates.counter_read_failure, 1.0);
        let mut plan = FaultPlan::new(cfg, 1);
        assert!(plan.counter_read_fails());
        let cfg = FaultConfig::only(FaultCategory::DroppedSample, -3.0);
        assert!(!cfg.enabled());
    }

    #[test]
    fn only_activates_a_single_category() {
        for &cat in &FaultCategory::ALL {
            let cfg = FaultConfig::only(cat, 0.5);
            assert!(cfg.enabled());
            for &other in &FaultCategory::ALL {
                let expect = if other == cat { 0.5 } else { 0.0 };
                assert_eq!(cfg.rates.rate(other), expect, "{}", other.name());
            }
        }
    }

    #[test]
    fn stale_fraction_stays_in_band() {
        let mut plan = FaultPlan::new(FaultConfig::chaos(1.0), 3);
        for _ in 0..500 {
            let f = plan.stale_fraction().expect("rate 1.0 always fires");
            assert!((0.4..=1.0).contains(&f), "fraction {f}");
        }
    }

    #[test]
    fn jitter_stays_within_configured_bound() {
        let mut plan = FaultPlan::new(FaultConfig::chaos(1.0), 5);
        let base = SimTime(1_000_000_000);
        for _ in 0..500 {
            let at = plan.jitter_deadline(base);
            let skew = at.0.abs_diff(base.0);
            assert!((1..=4_000_000).contains(&skew), "skew {skew}");
        }
    }

    #[test]
    fn tally_merge_is_commutative_and_identity_preserving() {
        let mut a = FaultPlan::new(FaultConfig::chaos(0.7), 11);
        let mut b = FaultPlan::new(FaultConfig::chaos(0.7), 12);
        drive(&mut a, 50);
        drive(&mut b, 50);
        let (ta, tb) = (a.tally(), b.tally());
        let mut ab = ta;
        ab.merge(&tb);
        let mut ba = tb;
        ba.merge(&ta);
        assert_eq!(ab, ba);
        let mut with_id = ta;
        with_id.merge(&FaultTally::default());
        assert_eq!(with_id, ta);
        assert!(ab.injected() >= ta.injected());
    }

    #[test]
    fn fault_seed_is_domain_separated_from_device_seed() {
        // Must differ from the undomain-separated SplitMix64 the fleet
        // uses for device seeds, and be stable and collision-free.
        assert_eq!(fault_seed(42, 3), fault_seed(42, 3));
        assert_ne!(fault_seed(42, 3), fault_seed(42, 4));
        assert_ne!(fault_seed(42, 3), fault_seed(43, 3));
        let seeds: std::collections::HashSet<u64> = (0..1_000).map(|i| fault_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1_000);
    }

    #[test]
    fn category_names_are_stable() {
        let names: Vec<&str> = FaultCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "counter-read",
                "stale-counter",
                "dropped-sample",
                "truncated-sample",
                "sampler-latency",
                "clock-jitter"
            ]
        );
    }

    #[test]
    fn net_plan_same_seed_same_schedule() {
        let mut a = NetFaultPlan::for_device(NetFaultConfig::chaos(0.3), 7, 4);
        let mut b = NetFaultPlan::for_device(NetFaultConfig::chaos(0.3), 7, 4);
        let fa: Vec<BatchFaults> = (0..200).map(|_| a.next_batch()).collect();
        let fb: Vec<BatchFaults> = (0..200).map(|_| b.next_batch()).collect();
        assert_eq!(fa, fb);
        assert_eq!(a.tally(), b.tally());
        let mut c = NetFaultPlan::for_device(NetFaultConfig::chaos(0.3), 7, 5);
        let fc: Vec<BatchFaults> = (0..200).map(|_| c.next_batch()).collect();
        assert_ne!(fa, fc, "different devices must get different schedules");
    }

    #[test]
    fn net_plan_disabled_is_inert() {
        let mut plan = NetFaultPlan::disabled();
        assert!(!plan.is_enabled());
        for _ in 0..100 {
            assert_eq!(plan.next_batch(), BatchFaults::default());
        }
        assert!(plan.tally().is_empty());
    }

    #[test]
    fn net_delay_stays_within_configured_bound() {
        let mut plan = NetFaultPlan::new(NetFaultConfig::chaos(1.0), 9);
        for _ in 0..300 {
            let faults = plan.next_batch();
            assert!(faults.drop_connection);
            assert!(faults.duplicate);
            let delay = faults.delay_ns.expect("rate 1.0 always fires");
            assert!((1..=2_000_000).contains(&delay), "delay {delay}");
        }
        assert_eq!(plan.tally().injected(), 900);
    }

    #[test]
    fn net_tally_merge_is_commutative_and_identity_preserving() {
        let mut a = NetFaultPlan::new(NetFaultConfig::chaos(0.7), 11);
        let mut b = NetFaultPlan::new(NetFaultConfig::chaos(0.7), 12);
        for _ in 0..50 {
            a.next_batch();
            b.next_batch();
        }
        let (ta, tb) = (a.tally(), b.tally());
        let mut ab = ta;
        ab.merge(&tb);
        let mut ba = tb;
        ba.merge(&ta);
        assert_eq!(ab, ba);
        let mut with_id = ta;
        with_id.merge(&NetFaultTally::default());
        assert_eq!(with_id, ta);
    }

    #[test]
    fn net_fault_seed_is_domain_separated() {
        assert_eq!(net_fault_seed(42, 3), net_fault_seed(42, 3));
        assert_ne!(net_fault_seed(42, 3), net_fault_seed(42, 4));
        assert_ne!(net_fault_seed(42, 3), fault_seed(42, 3));
        let seeds: std::collections::HashSet<u64> =
            (0..1_000).map(|i| net_fault_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1_000);
    }

    #[test]
    fn net_category_names_are_stable() {
        let names: Vec<&str> = NetFaultCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec!["connection-drop", "delivery-delay", "duplicate-frame"]
        );
    }

    #[test]
    fn ctrl_plan_same_seed_same_schedule() {
        let mut a = CtrlFaultPlan::for_device(CtrlFaultConfig::chaos(0.3), 7, 4);
        let mut b = CtrlFaultPlan::for_device(CtrlFaultConfig::chaos(0.3), 7, 4);
        let fa: Vec<FrameFaults> = (0..200).map(|_| a.next_frame()).collect();
        let fb: Vec<FrameFaults> = (0..200).map(|_| b.next_frame()).collect();
        assert_eq!(fa, fb);
        assert_eq!(a.tally(), b.tally());
        let mut c = CtrlFaultPlan::for_device(CtrlFaultConfig::chaos(0.3), 7, 5);
        let fc: Vec<FrameFaults> = (0..200).map(|_| c.next_frame()).collect();
        assert_ne!(fa, fc, "different devices must get different schedules");
    }

    #[test]
    fn ctrl_plan_disabled_is_inert() {
        let mut plan = CtrlFaultPlan::disabled();
        assert!(!plan.is_enabled());
        for _ in 0..100 {
            assert_eq!(plan.next_frame(), FrameFaults::default());
        }
        assert!(plan.tally().is_empty());
    }

    #[test]
    fn ctrl_delay_stays_within_configured_bound() {
        let mut plan = CtrlFaultPlan::new(CtrlFaultConfig::chaos(1.0), 9);
        for _ in 0..300 {
            let faults = plan.next_frame();
            assert!(faults.drop);
            assert!(faults.duplicate);
            let delay = faults.delay_ns.expect("rate 1.0 always fires");
            assert!((1..=2_000_000).contains(&delay), "delay {delay}");
        }
        assert_eq!(plan.tally().injected(), 900);
    }

    #[test]
    fn ctrl_only_activates_a_single_category() {
        for &cat in &CtrlFaultCategory::ALL {
            let cfg = CtrlFaultConfig::only(cat, 0.5);
            assert!(cfg.enabled());
            let rates = [
                (CtrlFaultCategory::FrameLoss, cfg.rates.frame_loss),
                (CtrlFaultCategory::FrameDelay, cfg.rates.frame_delay),
                (CtrlFaultCategory::FrameDuplicate, cfg.rates.frame_duplicate),
            ];
            for (other, rate) in rates {
                let expect = if other == cat { 0.5 } else { 0.0 };
                assert_eq!(rate, expect, "{}", other.name());
            }
        }
    }

    #[test]
    fn ctrl_tally_merge_is_commutative_and_identity_preserving() {
        let mut a = CtrlFaultPlan::new(CtrlFaultConfig::chaos(0.7), 11);
        let mut b = CtrlFaultPlan::new(CtrlFaultConfig::chaos(0.7), 12);
        for _ in 0..50 {
            a.next_frame();
            b.next_frame();
        }
        let (ta, tb) = (a.tally(), b.tally());
        let mut ab = ta;
        ab.merge(&tb);
        let mut ba = tb;
        ba.merge(&ta);
        assert_eq!(ab, ba);
        let mut with_id = ta;
        with_id.merge(&CtrlFaultTally::default());
        assert_eq!(with_id, ta);
    }

    #[test]
    fn ctrl_fault_seed_is_domain_separated() {
        assert_eq!(ctrl_fault_seed(42, 3), ctrl_fault_seed(42, 3));
        assert_ne!(ctrl_fault_seed(42, 3), ctrl_fault_seed(42, 4));
        assert_ne!(ctrl_fault_seed(42, 3), net_fault_seed(42, 3));
        assert_ne!(ctrl_fault_seed(42, 3), fault_seed(42, 3));
        assert_ne!(ctrl_fault_seed(42, 3), node_crash_seed(42, 3));
        let seeds: std::collections::HashSet<u64> =
            (0..1_000).map(|i| ctrl_fault_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1_000);
    }

    #[test]
    fn ctrl_category_names_are_stable() {
        let names: Vec<&str> = CtrlFaultCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["frame-loss", "frame-delay", "frame-duplicate"]);
    }

    #[test]
    fn node_crash_plan_is_deterministic_and_bounded() {
        let a = NodeCrashPlan::for_cluster(0.8, 3, 5, 99);
        let b = NodeCrashPlan::for_cluster(0.8, 3, 5, 99);
        assert_eq!(a, b);
        assert_eq!(a.waves(), 5);
        // Never a crash after the final wave; targets in range.
        assert_eq!(a.crash_after(4), None);
        for w in 0..5 {
            if let Some(node) = a.crash_after(w) {
                assert!(node < 3);
            }
        }
        // rate = 1 crashes after every non-final wave.
        let always = NodeCrashPlan::for_cluster(1.0, 3, 4, 7);
        assert_eq!(always.crash_count(), 3);
        // rate = 0 never crashes.
        assert_eq!(NodeCrashPlan::for_cluster(0.0, 3, 4, 7).crash_count(), 0);
        assert_eq!(NodeCrashPlan::none(4).crash_count(), 0);
    }

    #[test]
    fn node_crash_seed_is_domain_separated_from_net_faults() {
        assert_eq!(node_crash_seed(42, 3), node_crash_seed(42, 3));
        assert_ne!(node_crash_seed(42, 3), net_fault_seed(42, 3));
        assert_ne!(node_crash_seed(42, 3), fault_seed(42, 3));
    }

    #[test]
    fn pinned_crash_schedule_fires_exactly_once() {
        let plan = NodeCrashPlan::pinned(3, 1, 2);
        assert_eq!(plan.crash_after(0), None);
        assert_eq!(plan.crash_after(1), Some(2));
        assert_eq!(plan.crash_after(2), None);
        assert_eq!(plan.crash_count(), 1);
        assert_eq!(NODE_CRASH_CATEGORY, "node-crash");
    }
}
