//! Property tests for the fault plan's headline guarantee: the fault
//! schedule of a job is a pure function of `(root_seed, job index)` and
//! the sequence of injection points reached — independent of thread
//! count, other jobs, and disabled categories.

use proptest::prelude::*;

use hd_faults::{fault_seed, FaultCategory, FaultConfig, FaultPlan};
use hd_simrt::SimTime;

/// Replays a mixed injection-point sequence and fingerprints every
/// decision the plan makes.
fn fingerprint(plan: &mut FaultPlan, points: &[u8]) -> Vec<u64> {
    let mut fp = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        let v = match p % 6 {
            0 => plan.counter_read_fails() as u64,
            1 => plan.stale_fraction().map(|f| f.to_bits()).unwrap_or(0),
            2 => plan.drop_sample() as u64,
            3 => plan.truncate_sample() as u64,
            4 => plan.sampler_latency_ns().unwrap_or(0),
            _ => plan.jitter_deadline(SimTime(i as u64 * 500_000)).0,
        };
        fp.push(v);
    }
    fp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same `(root_seed, job)` ⇒ identical fault schedule, regardless of
    /// how many *other* plans exist or in what order they are driven
    /// (the stand-in for "at any thread count": plans share no state).
    #[test]
    fn schedule_is_pure_function_of_seed_and_job(
        root_seed in 0u64..1_000_000,
        job in 0u64..4096,
        points in proptest::collection::vec(0u8..6, 1..200),
        interleaved_jobs in proptest::collection::vec(0u64..4096, 0..8),
    ) {
        let cfg = FaultConfig::chaos(0.35);
        let mut solo = FaultPlan::for_job(cfg, root_seed, job);
        let solo_fp = fingerprint(&mut solo, &points);

        // Drive a crowd of other jobs' plans first, in arbitrary order:
        // the target job's schedule must not care.
        let mut others: Vec<FaultPlan> = interleaved_jobs
            .iter()
            .map(|&j| FaultPlan::for_job(cfg, root_seed, j))
            .collect();
        for other in &mut others {
            fingerprint(other, &points);
        }
        let mut again = FaultPlan::for_job(cfg, root_seed, job);
        let again_fp = fingerprint(&mut again, &points);

        prop_assert_eq!(&solo_fp, &again_fp);
        prop_assert_eq!(solo.tally(), again.tally());
    }

    /// Distinct jobs get distinct seeds (no schedule collisions from the
    /// derivation itself).
    #[test]
    fn distinct_jobs_get_distinct_seeds(
        root_seed in 0u64..1_000_000,
        a in 0u64..100_000,
        b in 0u64..100_000,
    ) {
        if a != b {
            prop_assert_ne!(fault_seed(root_seed, a), fault_seed(root_seed, b));
        } else {
            prop_assert_eq!(fault_seed(root_seed, a), fault_seed(root_seed, b));
        }
    }

    /// A category at rate zero never fires and never perturbs the other
    /// categories' draws.
    #[test]
    fn zero_rate_categories_are_transparent(
        seed in 0u64..100_000,
        cat_idx in 0usize..6,
        points in proptest::collection::vec(0u8..6, 1..150),
    ) {
        let cat = FaultCategory::ALL[cat_idx];
        let mut with_zero = FaultConfig::chaos(0.4);
        with_zero.rates = {
            let mut r = with_zero.rates;
            match cat {
                FaultCategory::CounterRead => r.counter_read_failure = 0.0,
                FaultCategory::StaleCounter => r.stale_counter = 0.0,
                FaultCategory::DroppedSample => r.dropped_sample = 0.0,
                FaultCategory::TruncatedSample => r.truncated_sample = 0.0,
                FaultCategory::SamplerLatency => r.sampler_latency = 0.0,
                FaultCategory::ClockJitter => r.clock_jitter = 0.0,
            }
            r
        };
        let mut plan = FaultPlan::new(with_zero, seed);
        fingerprint(&mut plan, &points);
        let t = plan.tally();
        let fired = match cat {
            FaultCategory::CounterRead => t.counter_read_failures,
            FaultCategory::StaleCounter => t.stale_snapshots,
            FaultCategory::DroppedSample => t.samples_dropped,
            FaultCategory::TruncatedSample => t.samples_truncated,
            FaultCategory::SamplerLatency => t.sampler_delays,
            FaultCategory::ClockJitter => t.clock_jitters,
        };
        prop_assert_eq!(fired, 0u64);
    }

    /// Tally merge is associative: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    #[test]
    fn tally_merge_is_associative(
        sa in 0u64..10_000, sb in 0u64..10_000, sc in 0u64..10_000,
        points in proptest::collection::vec(0u8..6, 1..100),
    ) {
        let cfg = FaultConfig::chaos(0.6);
        let tally_of = |seed: u64| {
            let mut p = FaultPlan::new(cfg, seed);
            fingerprint(&mut p, &points);
            p.tally()
        };
        let (a, b, c) = (tally_of(sa), tally_of(sb), tally_of(sc));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }
}
