//! `hd-control`: the Hang Doctor fleet control plane.
//!
//! The paper's adaptation loop (EuroSys '18, §4.4) retrains the
//! S-Checker's symptom thresholds from fleet-aggregated counter data;
//! this crate closes that loop over the wire. It layers a bidirectional
//! control dialect — `hang-doctor/control/v1` — on the existing
//! telemetry connection (negotiated through the same Hello/Welcome
//! handshake) and splits the work across two halves:
//!
//! * [`FleetController`] (server): remembers each device's last-synced
//!   live state, answers operator probes (state-table queries, on-demand
//!   stack-dump pulls, per-app diagnosis toggles), and stages retrained
//!   threshold pushes through a deterministic canary rollout
//!   ([`Rollout`]: 1% → 25% → 100% by stable device-hash bucket, with
//!   automatic rollback when the canary cohort's NACK/abort tally
//!   regresses against the rest of the fleet).
//! * [`ControlAgent`] (device): harvests each run's output, syncs it,
//!   and applies the returned [`Directives`] — pushed thresholds are
//!   re-validated through the full `HangDoctorConfig` builder before
//!   they take effect.
//!
//! Every message is idempotent by construction (replace-semantics syncs,
//! target-stage advances, full-desired-state directives), which is what
//! lets the transport survive the control-frame loss/delay/duplication
//! faults `hd-faults` injects under `--chaos`.

pub mod agent;
pub mod controller;
pub mod proto;
pub mod rollout;

pub use agent::ControlAgent;
pub use controller::FleetController;
pub use proto::{
    CohortHealth, ControlRequest, ControlResponse, Directives, RolloutSpec, RolloutStatusInfo,
    StackDump, SyncReport, CONTROL_SCHEMA,
};
pub use rollout::{device_bucket, Rollout, RolloutStage, BUCKETS};
