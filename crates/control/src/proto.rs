//! The `hang-doctor/control/v1` message vocabulary.
//!
//! Control messages ride the telemetry connection (the transport layer
//! wraps them in its own framed envelope and negotiates the dialect via
//! the existing Hello/Welcome handshake); this module only defines what
//! the two ends can say to each other:
//!
//! * a device **syncs** its live state ([`SyncReport`]) and receives the
//!   server's current [`Directives`] for it in one round trip;
//! * an operator **queries** any synced device's state table, **pulls**
//!   its last on-demand stack dump, **toggles** diagnosis per app, and
//!   **pushes** retrained thresholds with staged canary semantics
//!   ([`super::rollout`]).
//!
//! Every message is designed to be **idempotent**: a duplicated or
//! replayed frame must never change the outcome (`Sync` replaces the
//! device's record, `AdvanceRollout` names its target stage explicitly),
//! which is what lets the control client survive the frame loss /
//! delay / duplication faults `hd-faults` injects.

use hangdoctor::{ActionState, SymptomThresholds};
use serde::{Deserialize, Serialize};

use crate::rollout::RolloutStage;

/// Schema tag of the control dialect, offered alongside the telemetry
/// dialects during Hello/Welcome negotiation.
pub const CONTROL_SCHEMA: &str = "hang-doctor/control/v1";

/// A stack dump pulled from a hung (or recently hung) action: the
/// diagnosis-side view of *why* the action stalled, synthesized from the
/// Trace Analyzer's root cause.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StackDump {
    /// Device the dump came from.
    pub device: u32,
    /// Name of the hung action.
    pub action: String,
    /// Uid of the hung action.
    pub uid: u64,
    /// Main-thread frames, outermost first.
    pub frames: Vec<String>,
    /// Response time of the hang the dump belongs to, ns.
    pub response_ns: u64,
}

/// Health counters a device reports with every sync; the rollout
/// regression check compares the canary cohort's tally against the rest
/// of the fleet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortHealth {
    /// Upload batches the device delivered.
    pub uploads: u64,
    /// Queue-full NACKs its uploader received.
    pub nacks: u64,
    /// Diagnosis sessions aborted on-device.
    pub aborts: u64,
}

impl CohortHealth {
    /// The regression signal: recoverable failures per device.
    pub fn bad(&self) -> u64 {
        self.nacks + self.aborts
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &CohortHealth) {
        self.uploads += other.uploads;
        self.nacks += other.nacks;
        self.aborts += other.aborts;
    }
}

/// What a device tells the server on every sync.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyncReport {
    /// Device id (stable across syncs).
    pub device: u32,
    /// App the device runs.
    pub app: String,
    /// Live per-action S-Checker states: `(uid, state, normal-count)`.
    pub states: Vec<(u64, ActionState, u32)>,
    /// The most recent on-demand stack dump, if diagnosis captured one.
    pub stack: Option<StackDump>,
    /// Health counters since the device started.
    pub health: CohortHealth,
}

/// What the server tells a device in response to a sync: the full
/// desired state, not a delta, so replaying the response is harmless.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Directives {
    /// Thresholds this device should run, when the rollout covers it
    /// (`None` = keep the locally-configured thresholds).
    pub thresholds: Option<SymptomThresholds>,
    /// Whether phase-2 diagnosis is enabled for this device's app.
    pub diagnosis_enabled: bool,
}

/// A staged threshold push: the retrained values plus the baseline to
/// restore on rollback.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RolloutSpec {
    /// The retrained thresholds to roll out.
    pub thresholds: SymptomThresholds,
    /// The thresholds every device falls back to if the canary cohort
    /// regresses.
    pub baseline: SymptomThresholds,
}

/// Operator/device → server control messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ControlRequest {
    /// Device: report live state, receive directives.
    Sync(SyncReport),
    /// Operator: read a synced device's live state table.
    QueryState {
        /// Device to query.
        device: u32,
    },
    /// Operator: pull a device's most recent stack dump.
    PullStack {
        /// Device to pull from.
        device: u32,
    },
    /// Operator: enable/disable phase-2 diagnosis for one app.
    ToggleDiagnosis {
        /// App package the toggle applies to.
        app: String,
        /// Desired diagnosis state.
        enabled: bool,
    },
    /// Operator: start a staged rollout of retrained thresholds
    /// (begins at the canary stage).
    PushThresholds(RolloutSpec),
    /// Operator: advance the rollout **to** `stage` (idempotent: naming
    /// the current or an earlier stage is a no-op).
    AdvanceRollout {
        /// Target stage.
        stage: RolloutStage,
    },
    /// Operator: read the rollout's current status.
    RolloutStatus,
}

/// Server → operator/device control responses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ControlResponse {
    /// Answer to `Sync`: the device's full desired state.
    Directives(Directives),
    /// Answer to `QueryState`.
    StateTable {
        /// Device the table belongs to.
        device: u32,
        /// Live `(uid, state, normal-count)` triples.
        states: Vec<(u64, ActionState, u32)>,
    },
    /// Answer to `PullStack` (`None` = the device has not captured one).
    Stack {
        /// Device the dump belongs to.
        device: u32,
        /// The dump, if any.
        stack: Option<StackDump>,
    },
    /// Generic acknowledgement (toggles).
    Ok,
    /// Answer to `PushThresholds`/`AdvanceRollout`/`RolloutStatus`.
    Rollout(RolloutStatusInfo),
    /// Typed failure (unknown device, invalid thresholds, no rollout).
    Err(String),
}

/// Serializable snapshot of a rollout's state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RolloutStatusInfo {
    /// Current stage name (`canary`/`expanded`/`full`), or `rolled-back`.
    pub stage: String,
    /// Whether the rollout was rolled back.
    pub rolled_back: bool,
    /// Devices in the rollout cohort (bucket below the stage cutoff).
    pub cohort_devices: u64,
    /// Regression signal (NACKs + aborts) tallied across the cohort.
    pub cohort_bad: u64,
    /// Devices outside the cohort.
    pub rest_devices: u64,
    /// Regression signal tallied across the rest of the fleet.
    pub rest_bad: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_health_merge_and_bad_signal() {
        let mut a = CohortHealth {
            uploads: 3,
            nacks: 1,
            aborts: 2,
        };
        let b = CohortHealth {
            uploads: 1,
            nacks: 4,
            aborts: 0,
        };
        a.merge(&b);
        assert_eq!(a.uploads, 4);
        assert_eq!(a.bad(), 7);
        assert_eq!(CohortHealth::default().bad(), 0);
    }

    #[test]
    fn control_schema_tag_is_pinned() {
        assert_eq!(CONTROL_SCHEMA, "hang-doctor/control/v1");
    }

    #[test]
    fn messages_round_trip_through_json() {
        let req = ControlRequest::Sync(SyncReport {
            device: 3,
            app: "k9mail".to_string(),
            states: vec![(1, ActionState::Suspicious, 0), (2, ActionState::Normal, 7)],
            stack: Some(StackDump {
                device: 3,
                action: "open inbox".to_string(),
                uid: 1,
                frames: vec!["a".to_string(), "b".to_string()],
                response_ns: 150_000_000,
            }),
            health: CohortHealth {
                uploads: 2,
                nacks: 0,
                aborts: 1,
            },
        });
        let json = serde_json::to_string(&req).unwrap();
        let back: ControlRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);

        let resp = ControlResponse::Rollout(RolloutStatusInfo {
            stage: "canary".to_string(),
            rolled_back: false,
            cohort_devices: 1,
            cohort_bad: 0,
            rest_devices: 9,
            rest_bad: 2,
        });
        let json = serde_json::to_string(&resp).unwrap();
        let back: ControlResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
