//! The server-side fleet controller.
//!
//! One [`FleetController`] lives inside the telemetry server (behind its
//! shard locks) and services every [`ControlRequest`] the fleet sends:
//! it keeps the last-synced record per device, the per-app diagnosis
//! toggles, and at most one live threshold [`Rollout`]. The rollback
//! decision is re-evaluated on every sync from the cohort-vs-rest health
//! split, so a regressing canary is caught as soon as its own devices
//! report in — no separate monitoring loop.

use std::collections::BTreeMap;

use hangdoctor::{ActionState, HangDoctorConfig};

use crate::proto::{
    CohortHealth, ControlRequest, ControlResponse, Directives, RolloutStatusInfo, StackDump,
};
use crate::rollout::Rollout;

/// Everything the server remembers about one device: refreshed wholesale
/// on every sync (replace semantics — duplicated syncs are idempotent).
#[derive(Clone, Debug)]
struct DeviceRecord {
    app: String,
    states: Vec<(u64, ActionState, u32)>,
    stack: Option<StackDump>,
    health: CohortHealth,
}

/// The control plane's server half.
#[derive(Debug, Default)]
pub struct FleetController {
    devices: BTreeMap<u32, DeviceRecord>,
    diagnosis: BTreeMap<String, bool>,
    rollout: Option<Rollout>,
}

impl FleetController {
    /// A fresh controller with no devices, no toggles, no rollout.
    pub fn new() -> FleetController {
        FleetController::default()
    }

    /// Number of devices that have synced at least once.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Services one control request.
    pub fn handle(&mut self, request: ControlRequest) -> ControlResponse {
        match request {
            ControlRequest::Sync(report) => {
                let device = report.device;
                self.devices.insert(
                    device,
                    DeviceRecord {
                        app: report.app,
                        states: report.states,
                        stack: report.stack,
                        health: report.health,
                    },
                );
                self.maybe_roll_back();
                ControlResponse::Directives(self.directives_for(device))
            }
            ControlRequest::QueryState { device } => match self.devices.get(&device) {
                Some(rec) => ControlResponse::StateTable {
                    device,
                    states: rec.states.clone(),
                },
                None => ControlResponse::Err(format!("unknown device {device}")),
            },
            ControlRequest::PullStack { device } => match self.devices.get(&device) {
                Some(rec) => ControlResponse::Stack {
                    device,
                    stack: rec.stack.clone(),
                },
                None => ControlResponse::Err(format!("unknown device {device}")),
            },
            ControlRequest::ToggleDiagnosis { app, enabled } => {
                self.diagnosis.insert(app, enabled);
                ControlResponse::Ok
            }
            ControlRequest::PushThresholds(spec) => {
                // Validate the push exactly the way a device would have
                // to apply it, so an invalid retrain never leaves the
                // server.
                if let Err(e) = HangDoctorConfig::builder()
                    .thresholds(spec.thresholds)
                    .build()
                {
                    return ControlResponse::Err(format!("rejected thresholds: {e}"));
                }
                if let Err(e) = HangDoctorConfig::builder()
                    .thresholds(spec.baseline)
                    .build()
                {
                    return ControlResponse::Err(format!("rejected baseline: {e}"));
                }
                self.rollout = Some(Rollout::new(spec));
                ControlResponse::Rollout(self.status())
            }
            ControlRequest::AdvanceRollout { stage } => match &mut self.rollout {
                Some(rollout) => {
                    rollout.advance_to(stage);
                    self.maybe_roll_back();
                    ControlResponse::Rollout(self.status())
                }
                None => ControlResponse::Err("no rollout in progress".to_string()),
            },
            ControlRequest::RolloutStatus => match &self.rollout {
                Some(_) => ControlResponse::Rollout(self.status()),
                None => ControlResponse::Err("no rollout in progress".to_string()),
            },
        }
    }

    /// The current desired state for one device.
    fn directives_for(&self, device: u32) -> Directives {
        let thresholds = self.rollout.as_ref().and_then(|r| r.thresholds_for(device));
        let diagnosis_enabled = self
            .devices
            .get(&device)
            .and_then(|rec| self.diagnosis.get(&rec.app))
            .copied()
            .unwrap_or(true);
        Directives {
            thresholds,
            diagnosis_enabled,
        }
    }

    /// Sums health over the rollout cohort vs the rest of the fleet:
    /// `(cohort_devices, cohort_bad, rest_devices, rest_bad)`.
    fn cohort_split(&self) -> (u64, u64, u64, u64) {
        let Some(rollout) = &self.rollout else {
            return (0, 0, 0, 0);
        };
        let (mut cd, mut cb, mut rd, mut rb) = (0u64, 0u64, 0u64, 0u64);
        for (&device, rec) in &self.devices {
            if rollout.in_cohort(device) {
                cd += 1;
                cb += rec.health.bad();
            } else {
                rd += 1;
                rb += rec.health.bad();
            }
        }
        (cd, cb, rd, rb)
    }

    /// Re-evaluates the regression rule and rolls back if it fires.
    fn maybe_roll_back(&mut self) {
        let (cd, cb, rd, rb) = self.cohort_split();
        if let Some(rollout) = &mut self.rollout {
            if !rollout.rolled_back() && Rollout::regressed(cd, cb, rd, rb) {
                rollout.roll_back();
            }
        }
    }

    /// The rollout status (callers must ensure a rollout exists).
    fn status(&self) -> RolloutStatusInfo {
        let (cd, cb, rd, rb) = self.cohort_split();
        self.rollout
            .as_ref()
            .expect("status requires a rollout")
            .status(cd, cb, rd, rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{RolloutSpec, SyncReport};
    use crate::rollout::{device_bucket, RolloutStage};
    use hangdoctor::SymptomThresholds;

    fn sync(device: u32, app: &str, bad: u64) -> ControlRequest {
        ControlRequest::Sync(SyncReport {
            device,
            app: app.to_string(),
            states: vec![(device as u64, ActionState::Normal, 3)],
            stack: Some(StackDump {
                device,
                action: "act".to_string(),
                uid: device as u64,
                frames: vec!["frame".to_string()],
                response_ns: 200_000_000,
            }),
            health: CohortHealth {
                uploads: 5,
                nacks: bad,
                aborts: 0,
            },
        })
    }

    fn spec() -> RolloutSpec {
        RolloutSpec {
            thresholds: SymptomThresholds {
                task_clock_diff: 5.0e7,
                ..SymptomThresholds::default()
            },
            baseline: SymptomThresholds::default(),
        }
    }

    /// A device whose bucket is inside the canary cohort, and one that
    /// stays outside even at the expanded stage.
    fn canary_and_rest() -> (u32, u32) {
        let inside = (1..10_000u32)
            .find(|&d| device_bucket(d) < RolloutStage::Canary.cutoff())
            .unwrap();
        let outside = (1..10_000u32)
            .find(|&d| device_bucket(d) >= RolloutStage::Expanded.cutoff())
            .unwrap();
        (inside, outside)
    }

    #[test]
    fn sync_then_query_and_pull_round_trip() {
        let mut c = FleetController::new();
        let resp = c.handle(sync(7, "k9mail", 0));
        assert!(matches!(resp, ControlResponse::Directives(_)));
        match c.handle(ControlRequest::QueryState { device: 7 }) {
            ControlResponse::StateTable { device, states } => {
                assert_eq!(device, 7);
                assert_eq!(states, vec![(7, ActionState::Normal, 3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match c.handle(ControlRequest::PullStack { device: 7 }) {
            ControlResponse::Stack { stack: Some(s), .. } => assert_eq!(s.action, "act"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            c.handle(ControlRequest::QueryState { device: 99 }),
            ControlResponse::Err(_)
        ));
        // Duplicate sync replaces, not accumulates.
        c.handle(sync(7, "k9mail", 0));
        assert_eq!(c.device_count(), 1);
    }

    #[test]
    fn diagnosis_toggle_reaches_the_apps_devices() {
        let mut c = FleetController::new();
        c.handle(sync(1, "k9mail", 0));
        c.handle(sync(2, "omni-notes", 0));
        assert!(matches!(
            c.handle(ControlRequest::ToggleDiagnosis {
                app: "k9mail".to_string(),
                enabled: false,
            }),
            ControlResponse::Ok
        ));
        match c.handle(sync(1, "k9mail", 0)) {
            ControlResponse::Directives(d) => assert!(!d.diagnosis_enabled),
            other => panic!("unexpected {other:?}"),
        }
        match c.handle(sync(2, "omni-notes", 0)) {
            ControlResponse::Directives(d) => assert!(d.diagnosis_enabled),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn push_rejects_invalid_thresholds() {
        let mut c = FleetController::new();
        let bad = RolloutSpec {
            thresholds: SymptomThresholds {
                task_clock_diff: -1.0,
                ..SymptomThresholds::default()
            },
            baseline: SymptomThresholds::default(),
        };
        assert!(matches!(
            c.handle(ControlRequest::PushThresholds(bad)),
            ControlResponse::Err(_)
        ));
        assert!(matches!(
            c.handle(ControlRequest::RolloutStatus),
            ControlResponse::Err(_)
        ));
    }

    #[test]
    fn staged_rollout_directs_only_the_cohort() {
        let (inside, outside) = canary_and_rest();
        let mut c = FleetController::new();
        c.handle(sync(inside, "k9mail", 0));
        c.handle(sync(outside, "k9mail", 0));
        match c.handle(ControlRequest::PushThresholds(spec())) {
            ControlResponse::Rollout(s) => {
                assert_eq!(s.stage, "canary");
                assert_eq!(s.cohort_devices, 1);
                assert_eq!(s.rest_devices, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match c.handle(sync(inside, "k9mail", 0)) {
            ControlResponse::Directives(d) => {
                assert_eq!(d.thresholds, Some(spec().thresholds))
            }
            other => panic!("unexpected {other:?}"),
        }
        match c.handle(sync(outside, "k9mail", 0)) {
            ControlResponse::Directives(d) => assert_eq!(d.thresholds, None),
            other => panic!("unexpected {other:?}"),
        }
        // Advance to full: now everyone is covered.
        match c.handle(ControlRequest::AdvanceRollout {
            stage: RolloutStage::Full,
        }) {
            ControlResponse::Rollout(s) => assert_eq!(s.stage, "full"),
            other => panic!("unexpected {other:?}"),
        }
        match c.handle(sync(outside, "k9mail", 0)) {
            ControlResponse::Directives(d) => {
                assert_eq!(d.thresholds, Some(spec().thresholds))
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            c.handle(ControlRequest::AdvanceRollout {
                stage: RolloutStage::Canary
            }),
            ControlResponse::Rollout(RolloutStatusInfo { ref stage, .. }) if stage == "full"
        ));
    }

    #[test]
    fn regressing_canary_rolls_back_deterministically() {
        let (inside, outside) = canary_and_rest();
        let mut c = FleetController::new();
        c.handle(sync(inside, "k9mail", 0));
        c.handle(sync(outside, "k9mail", 0));
        c.handle(ControlRequest::PushThresholds(spec()));
        // The canary device reports a burst of bad events; the rest of
        // the fleet stays clean. regressed(1, 5, 1, 0): 5*1 > 0 + 1.
        match c.handle(sync(inside, "k9mail", 5)) {
            // The regressing device itself is already redirected to the
            // baseline in the same round trip.
            ControlResponse::Directives(d) => {
                assert_eq!(d.thresholds, Some(spec().baseline))
            }
            other => panic!("unexpected {other:?}"),
        }
        match c.handle(ControlRequest::RolloutStatus) {
            ControlResponse::Rollout(s) => {
                assert!(s.rolled_back);
                assert_eq!(s.stage, "rolled-back");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Everyone — cohort or not — is pinned to baseline now.
        match c.handle(sync(outside, "k9mail", 0)) {
            ControlResponse::Directives(d) => {
                assert_eq!(d.thresholds, Some(spec().baseline))
            }
            other => panic!("unexpected {other:?}"),
        }
        // And a late advance cannot resurrect it.
        c.handle(ControlRequest::AdvanceRollout {
            stage: RolloutStage::Full,
        });
        match c.handle(ControlRequest::RolloutStatus) {
            ControlResponse::Rollout(s) => assert!(s.rolled_back),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn uniform_chaos_does_not_trip_the_rollback() {
        let (inside, outside) = canary_and_rest();
        let mut c = FleetController::new();
        c.handle(ControlRequest::PushThresholds(spec()));
        // Both cohorts see the same per-device bad rate.
        c.handle(sync(inside, "k9mail", 4));
        c.handle(sync(outside, "k9mail", 4));
        match c.handle(ControlRequest::RolloutStatus) {
            ControlResponse::Rollout(s) => assert!(!s.rolled_back),
            other => panic!("unexpected {other:?}"),
        }
    }
}
