//! Canary/percent rollout of pushed thresholds.
//!
//! ## Bucketing
//!
//! Every device hashes to a stable bucket in `[0, 10_000)` via the same
//! SplitMix64 scramble the fleet uses for seeds (domain-separated by its
//! own constant). A stage covers the devices whose bucket is **below**
//! its cutoff — 100 (1%), 2 500 (25%), 10 000 (100%) — so the cohorts
//! are strictly nested: advancing a stage only ever *adds* devices, and
//! a device's membership is a pure function of its id, independent of
//! fleet size, sync order, or thread count.
//!
//! ## Rollback rule
//!
//! With `bad = nacks + aborts` summed per cohort, the rollout regresses
//! when
//!
//! ```text
//! cohort_bad * rest_devices > 2 * rest_bad * cohort_devices + rest_devices
//! ```
//!
//! i.e. the cohort's per-device bad rate exceeds **twice** the rest of
//! the fleet's, with `+rest_devices` slack (one whole bad event per
//! cohort device) so uniform background chaos — which inflates both
//! sides equally — can never trip it. Cross-multiplied integer form: no
//! floats, no division, deterministic. Once rolled back, the rollout
//! directs **every** device to the baseline thresholds and stays there.

use serde::{Deserialize, Serialize};

use hangdoctor::SymptomThresholds;

use crate::proto::{RolloutSpec, RolloutStatusInfo};

/// Total hash buckets (cutoffs are per-ten-thousand).
pub const BUCKETS: u32 = 10_000;

/// Stable rollout bucket of a device: SplitMix64 of the device id under
/// a rollout-specific domain constant, reduced mod [`BUCKETS`].
pub fn device_bucket(device: u32) -> u32 {
    let mut z = (device as u64 ^ 0x5EED_B0C4_E7CA_97A5u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(device as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % BUCKETS as u64) as u32
}

/// The staged rollout percentages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RolloutStage {
    /// 1% of devices (bucket < 100).
    Canary,
    /// 25% of devices (bucket < 2 500).
    Expanded,
    /// Every device.
    Full,
}

impl RolloutStage {
    /// Every stage, in rollout order.
    pub const ALL: [RolloutStage; 3] = [
        RolloutStage::Canary,
        RolloutStage::Expanded,
        RolloutStage::Full,
    ];

    /// Bucket cutoff: devices with `bucket < cutoff` are in the cohort.
    pub fn cutoff(self) -> u32 {
        match self {
            RolloutStage::Canary => 100,
            RolloutStage::Expanded => 2_500,
            RolloutStage::Full => BUCKETS,
        }
    }

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            RolloutStage::Canary => "canary",
            RolloutStage::Expanded => "expanded",
            RolloutStage::Full => "full",
        }
    }
}

/// Internal rollout state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RolloutState {
    /// Rolling forward, currently at this stage.
    Staged(RolloutStage),
    /// Regressed: every device gets the baseline.
    RolledBack,
}

/// One staged threshold rollout.
#[derive(Clone, Debug)]
pub struct Rollout {
    spec: RolloutSpec,
    state: RolloutState,
}

impl Rollout {
    /// Starts a rollout at the canary stage.
    pub fn new(spec: RolloutSpec) -> Rollout {
        Rollout {
            spec,
            state: RolloutState::Staged(RolloutStage::Canary),
        }
    }

    /// The push this rollout is staging.
    pub fn spec(&self) -> &RolloutSpec {
        &self.spec
    }

    /// The current stage while rolling forward (`None` once rolled
    /// back).
    pub fn stage(&self) -> Option<RolloutStage> {
        match self.state {
            RolloutState::Staged(s) => Some(s),
            RolloutState::RolledBack => None,
        }
    }

    /// Whether the rollout regressed and was rolled back.
    pub fn rolled_back(&self) -> bool {
        self.state == RolloutState::RolledBack
    }

    /// Whether `device` is inside the current cohort. Rolled-back
    /// rollouts have an empty cohort.
    pub fn in_cohort(&self, device: u32) -> bool {
        match self.state {
            RolloutState::Staged(stage) => device_bucket(device) < stage.cutoff(),
            RolloutState::RolledBack => false,
        }
    }

    /// The thresholds this rollout directs `device` to run, if it
    /// overrides the device's local configuration at all.
    pub fn thresholds_for(&self, device: u32) -> Option<SymptomThresholds> {
        match self.state {
            RolloutState::Staged(_) if self.in_cohort(device) => Some(self.spec.thresholds),
            RolloutState::Staged(_) => None,
            // Rolled back: pin EVERY device to the baseline, including
            // former cohort members that already applied the new values.
            RolloutState::RolledBack => Some(self.spec.baseline),
        }
    }

    /// Advances **to** `target`. Forward-only and idempotent: naming the
    /// current or an earlier stage changes nothing, so a duplicated
    /// advance frame is harmless. No-op after rollback.
    pub fn advance_to(&mut self, target: RolloutStage) {
        if let RolloutState::Staged(current) = self.state {
            if target > current {
                self.state = RolloutState::Staged(target);
            }
        }
    }

    /// Rolls the push back; every device is now directed to the
    /// baseline. Irreversible (a new push starts a new rollout).
    pub fn roll_back(&mut self) {
        self.state = RolloutState::RolledBack;
    }

    /// The deterministic regression rule over the cohort-vs-rest health
    /// split (see the module docs). Never fires while either side is
    /// empty — there is nothing to compare against.
    pub fn regressed(
        cohort_devices: u64,
        cohort_bad: u64,
        rest_devices: u64,
        rest_bad: u64,
    ) -> bool {
        if cohort_devices == 0 || rest_devices == 0 {
            return false;
        }
        cohort_bad * rest_devices > 2 * rest_bad * cohort_devices + rest_devices
    }

    /// Serializable status over a given cohort/rest health split.
    pub fn status(
        &self,
        cohort_devices: u64,
        cohort_bad: u64,
        rest_devices: u64,
        rest_bad: u64,
    ) -> RolloutStatusInfo {
        RolloutStatusInfo {
            stage: match self.state {
                RolloutState::Staged(s) => s.name().to_string(),
                RolloutState::RolledBack => "rolled-back".to_string(),
            },
            rolled_back: self.rolled_back(),
            cohort_devices,
            cohort_bad,
            rest_devices,
            rest_bad,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RolloutSpec {
        RolloutSpec {
            thresholds: SymptomThresholds {
                task_clock_diff: 5.0e7,
                ..SymptomThresholds::default()
            },
            baseline: SymptomThresholds::default(),
        }
    }

    #[test]
    fn buckets_are_stable_and_spread() {
        assert_eq!(device_bucket(7), device_bucket(7));
        // Over 10k devices each stage covers roughly its fraction.
        let devices: Vec<u32> = (1..=10_000).collect();
        let covered = |stage: RolloutStage| {
            devices
                .iter()
                .filter(|&&d| device_bucket(d) < stage.cutoff())
                .count()
        };
        let canary = covered(RolloutStage::Canary);
        let expanded = covered(RolloutStage::Expanded);
        let full = covered(RolloutStage::Full);
        assert!((50..200).contains(&canary), "canary covered {canary}");
        assert!(
            (2_000..3_000).contains(&expanded),
            "expanded covered {expanded}"
        );
        assert_eq!(full, devices.len());
    }

    #[test]
    fn cohorts_are_nested() {
        // Advancing must only ever add devices.
        for device in 1..2_000u32 {
            let b = device_bucket(device);
            if b < RolloutStage::Canary.cutoff() {
                assert!(b < RolloutStage::Expanded.cutoff());
            }
            if b < RolloutStage::Expanded.cutoff() {
                assert!(b < RolloutStage::Full.cutoff());
            }
        }
    }

    #[test]
    fn advance_is_forward_only_and_idempotent() {
        let mut r = Rollout::new(spec());
        assert_eq!(r.stage(), Some(RolloutStage::Canary));
        r.advance_to(RolloutStage::Expanded);
        assert_eq!(r.stage(), Some(RolloutStage::Expanded));
        // Duplicate frame: same target again — no change.
        r.advance_to(RolloutStage::Expanded);
        assert_eq!(r.stage(), Some(RolloutStage::Expanded));
        // Stale frame naming an earlier stage — no change.
        r.advance_to(RolloutStage::Canary);
        assert_eq!(r.stage(), Some(RolloutStage::Expanded));
        r.advance_to(RolloutStage::Full);
        assert_eq!(r.stage(), Some(RolloutStage::Full));
    }

    #[test]
    fn thresholds_follow_the_cohort_then_the_rollback() {
        let mut r = Rollout::new(spec());
        let inside = (1..10_000u32)
            .find(|&d| device_bucket(d) < RolloutStage::Canary.cutoff())
            .expect("some device lands in the canary");
        let outside = (1..10_000u32)
            .find(|&d| device_bucket(d) >= RolloutStage::Expanded.cutoff())
            .expect("some device stays outside");
        assert_eq!(r.thresholds_for(inside), Some(spec().thresholds));
        assert_eq!(r.thresholds_for(outside), None);

        r.roll_back();
        assert!(r.rolled_back());
        assert_eq!(r.stage(), None);
        // EVERY device — former cohort included — is pinned to baseline.
        assert_eq!(r.thresholds_for(inside), Some(spec().baseline));
        assert_eq!(r.thresholds_for(outside), Some(spec().baseline));
        // And rollback is sticky against late advance frames.
        r.advance_to(RolloutStage::Full);
        assert!(r.rolled_back());
    }

    #[test]
    fn regression_rule_needs_both_cohorts_and_headroom() {
        // Empty side: never fires.
        assert!(!Rollout::regressed(0, 0, 10, 0));
        assert!(!Rollout::regressed(5, 100, 0, 0));
        // Uniform chaos (equal per-device rates) never fires.
        assert!(!Rollout::regressed(10, 50, 90, 450));
        // Double the rest's rate is still within the factor-2 headroom.
        assert!(!Rollout::regressed(10, 100, 90, 450));
        // Far above: fires.
        assert!(Rollout::regressed(10, 200, 90, 450));
        // Slack: one bad event in a tiny cohort with a clean rest does
        // not trip it (the +rest_devices term).
        assert!(!Rollout::regressed(1, 1, 99, 0));
        assert!(Rollout::regressed(1, 3, 99, 0));
    }
}
