//! The device-side control agent.
//!
//! Embedded in the fleet/simulator loop, the agent harvests each job's
//! [`HdOutput`] between runs ([`ControlAgent::observe`]), reports it to
//! the server as a [`SyncReport`], and applies whatever [`Directives`]
//! come back. Pushed thresholds are **never** installed directly: the
//! agent rebuilds its configuration through the full
//! [`HangDoctorConfig`] builder, so a malformed push (negative or NaN
//! threshold) is rejected with the same typed [`ConfigError`] a local
//! misconfiguration would get, and the device keeps running its current
//! values.

use hangdoctor::{ConfigError, HangDoctorConfig, HdOutput};

use crate::proto::{CohortHealth, Directives, StackDump, SyncReport};

/// Per-device control state: the live config, the harvest of the last
/// run, and the running health tally.
#[derive(Clone, Debug)]
pub struct ControlAgent {
    device: u32,
    app: String,
    config: HangDoctorConfig,
    diagnosis_enabled: bool,
    last_states: Vec<(u64, hangdoctor::ActionState, u32)>,
    last_stack: Option<StackDump>,
    health: CohortHealth,
}

impl ControlAgent {
    /// Creates the agent for `device` running `app` under `config`.
    pub fn new(device: u32, app: &str, config: HangDoctorConfig) -> ControlAgent {
        ControlAgent {
            device,
            app: app.to_string(),
            config,
            diagnosis_enabled: true,
            last_states: Vec::new(),
            last_stack: None,
            health: CohortHealth::default(),
        }
    }

    /// The device id.
    pub fn device(&self) -> u32 {
        self.device
    }

    /// The configuration the device currently runs.
    pub fn config(&self) -> &HangDoctorConfig {
        &self.config
    }

    /// Whether phase-2 diagnosis is currently enabled.
    pub fn diagnosis_enabled(&self) -> bool {
        self.diagnosis_enabled
    }

    /// Harvests one finished run: live state table, the freshest stack
    /// dump (only while diagnosis is enabled — a disabled device stops
    /// collecting traces), and the health counters the rollout
    /// regression check feeds on.
    pub fn observe(&mut self, out: &HdOutput) {
        self.last_states = out
            .states
            .export()
            .into_iter()
            .map(|(uid, s, n)| (uid.0, s, n))
            .collect();
        if self.diagnosis_enabled {
            if let Some(d) = out.detections.last() {
                let mut frames = vec![
                    "android.os.Looper.loop".to_string(),
                    format!("{}#{}.dispatch", self.app, d.action_name),
                ];
                if let Some(root) = &d.root {
                    frames.push(format!("{} ({}:{})", root.symbol, root.file, root.line));
                }
                self.last_stack = Some(StackDump {
                    device: self.device,
                    action: d.action_name.clone(),
                    uid: d.uid.0,
                    frames,
                    response_ns: d.response_ns,
                });
            }
        }
        self.health.uploads += 1;
        self.health.aborts += out.faults.sessions_aborted;
    }

    /// Records upload-path NACKs into the health tally (the uploader
    /// owns that counter; the agent only reports it).
    pub fn record_nacks(&mut self, nacks: u64) {
        self.health.nacks += nacks;
    }

    /// The sync report for the next control round trip.
    pub fn sync_report(&self) -> SyncReport {
        SyncReport {
            device: self.device,
            app: self.app.clone(),
            states: self.last_states.clone(),
            stack: self.last_stack.clone(),
            health: self.health,
        }
    }

    /// Applies the server's directives. Pushed thresholds go through the
    /// full config builder — every knob of the current config is
    /// re-validated alongside the new thresholds — and the agent's
    /// config only changes when validation passes. Returns whether
    /// anything actually changed, so a duplicated directive frame is
    /// observably a no-op.
    pub fn apply(&mut self, directives: &Directives) -> Result<bool, ConfigError> {
        let mut changed = false;
        if let Some(thresholds) = directives.thresholds {
            let current = &self.config;
            let rebuilt = HangDoctorConfig::builder()
                .timeout_ns(current.timeout_ns)
                .thresholds(thresholds)
                .sample_period_ns(current.sample_period_ns)
                .occurrence_threshold(current.occurrence_threshold)
                .normal_reset_executions(current.normal_reset_executions)
                .monitor_network(current.monitor_network)
                .counter_retries(current.counter_retries)
                .retry_backoff_ns(current.retry_backoff_ns)
                .min_diagnosis_samples(current.min_diagnosis_samples)
                .max_sample_loss(current.max_sample_loss)
                .causal_blame(current.causal_blame)
                .costs(current.costs)
                .build()?;
            // HangDoctorConfig has no PartialEq (it carries a cost
            // model); canonical JSON equality is the change detector.
            let before = serde_json::to_string(&self.config).expect("config serializes");
            let after = serde_json::to_string(&rebuilt).expect("config serializes");
            if before != after {
                self.config = rebuilt;
                changed = true;
            }
        }
        if self.diagnosis_enabled != directives.diagnosis_enabled {
            self.diagnosis_enabled = directives.diagnosis_enabled;
            if !self.diagnosis_enabled {
                // A disabled device stops holding stack traces.
                self.last_stack = None;
            }
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hangdoctor::SymptomThresholds;

    fn directives(thresholds: Option<SymptomThresholds>) -> Directives {
        Directives {
            thresholds,
            diagnosis_enabled: true,
        }
    }

    #[test]
    fn pushed_thresholds_apply_through_builder_validation() {
        let mut agent = ControlAgent::new(1, "k9mail", HangDoctorConfig::default());
        let pushed = SymptomThresholds {
            task_clock_diff: 5.0e7,
            ..SymptomThresholds::default()
        };
        let changed = agent.apply(&directives(Some(pushed))).unwrap();
        assert!(changed);
        assert_eq!(agent.config().thresholds, pushed);
        // Re-applying the same directive is a validated no-op.
        let changed = agent.apply(&directives(Some(pushed))).unwrap();
        assert!(!changed);
        assert_eq!(agent.config().thresholds, pushed);
    }

    #[test]
    fn malformed_push_is_rejected_and_config_untouched() {
        let mut agent = ControlAgent::new(1, "k9mail", HangDoctorConfig::default());
        let bad = SymptomThresholds {
            page_fault_diff: -1.0,
            ..SymptomThresholds::default()
        };
        let err = agent.apply(&directives(Some(bad))).unwrap_err();
        assert_eq!(err, ConfigError::InvalidThreshold("page_fault_diff"));
        assert_eq!(agent.config().thresholds, SymptomThresholds::default());
        let bad = SymptomThresholds {
            task_clock_diff: f64::NAN,
            ..SymptomThresholds::default()
        };
        assert!(agent.apply(&directives(Some(bad))).is_err());
    }

    #[test]
    fn diagnosis_toggle_changes_and_clears_the_stack() {
        let mut agent = ControlAgent::new(2, "omni-notes", HangDoctorConfig::default());
        agent.last_stack = Some(StackDump {
            device: 2,
            action: "open editor".to_string(),
            uid: 0,
            frames: vec!["f".to_string()],
            response_ns: 1,
        });
        let off = Directives {
            thresholds: None,
            diagnosis_enabled: false,
        };
        assert!(agent.apply(&off).unwrap());
        assert!(!agent.diagnosis_enabled());
        assert!(agent.sync_report().stack.is_none());
        // Idempotent.
        assert!(!agent.apply(&off).unwrap());
    }

    #[test]
    fn observe_harvests_a_real_run() {
        use hangdoctor::HangDoctor;
        use hd_appmodel::corpus::table5;
        use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
        use hd_simrt::SimConfig;

        let app = table5::k9mail();
        let compiled = CompiledApp::new(app.clone());
        let sched = round_robin_schedule(&app, 3, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 21);
        let (probe, out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            1,
            None,
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();

        let mut agent = ControlAgent::new(5, &app.name, HangDoctorConfig::default());
        agent.observe(&out);
        let report = agent.sync_report();
        assert!(!report.states.is_empty());
        assert_eq!(report.health.uploads, 1);
        if !out.detections.is_empty() {
            let stack = report
                .stack
                .as_ref()
                .expect("detection produces a stack dump");
            assert_eq!(stack.device, 5);
            assert!(stack.frames.len() >= 2);
        }
    }

    #[test]
    fn health_tally_accumulates() {
        let mut agent = ControlAgent::new(3, "app", HangDoctorConfig::default());
        agent.record_nacks(2);
        agent.record_nacks(1);
        let health = agent.sync_report().health;
        assert_eq!(health.nacks, 3);
        assert_eq!(health.bad(), 3);
    }
}
