//! API specifications: names, classification, and cost models.
//!
//! Every operation an app performs is a call to an *API* — an Android
//! framework method, a third-party library method, or a self-developed
//! function. The classification mirrors the paper's taxonomy: UI APIs
//! must stay on the main thread and are never soft hang bugs; blocking
//! APIs can (and should) be moved off; some blocking APIs only became
//! *known* as blocking years after release, which is the gap Hang Doctor
//! fills.

use serde::{Deserialize, Serialize};

use crate::dist::Dist;
use crate::profile::ProfileKind;

/// Index of an API within an [`crate::app::App`]'s API list.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ApiId(pub usize);

/// Classification of an API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApiKind {
    /// Manipulates the UI; must execute on the main thread. Never a soft
    /// hang bug.
    Ui,
    /// A blocking operation that could run on a worker thread.
    ///
    /// `known_since` is the year the API was publicly documented as
    /// blocking (e.g. `camera.open` in 2011); `None` means it is still
    /// unknown to offline detectors at study time.
    Blocking {
        /// Year the API became known as blocking, if ever.
        known_since: Option<u16>,
    },
    /// A self-developed lengthy operation (heavy loop etc.); offline
    /// name-matching can never find these.
    SelfDeveloped,
    /// A pass-through wrapper (library entry point or app helper) that
    /// does no work itself but appears on the stack between the handler
    /// and the API doing the work.
    Wrapper,
}

/// Full specification of one API.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ApiSpec {
    /// Fully qualified symbol, e.g. `android.hardware.Camera.open`.
    pub symbol: String,
    /// Source file of the implementation.
    pub file: String,
    /// Line in `file`.
    pub line: u32,
    /// Classification.
    pub kind: ApiKind,
    /// Execution cost model.
    pub cost: CostSpec,
    /// Whether the API lives in a closed-source (unscannable) library.
    pub closed_source: bool,
}

impl ApiSpec {
    /// Creates an API spec; the file defaults to `<Class>.java`.
    pub fn new(symbol: &str, line: u32, kind: ApiKind, cost: CostSpec) -> ApiSpec {
        let class = symbol.rsplit_once('.').map(|(c, _)| c).unwrap_or(symbol);
        let short = class.rsplit_once('.').map(|(_, s)| s).unwrap_or(class);
        ApiSpec {
            symbol: symbol.to_string(),
            file: format!("{short}.java"),
            line,
            kind,
            cost,
            closed_source: false,
        }
    }

    /// Marks the API as living in a closed-source library.
    pub fn closed(mut self) -> ApiSpec {
        self.closed_source = true;
        self
    }

    /// Returns whether this API is in the known-blocking database as of
    /// `year` (what an offline scanner of that vintage would know).
    pub fn known_blocking_in(&self, year: u16) -> bool {
        matches!(self.kind, ApiKind::Blocking { known_since: Some(y) } if y <= year)
    }

    /// Returns whether this is a UI API.
    pub fn is_ui(&self) -> bool {
        matches!(self.kind, ApiKind::Ui)
    }
}

/// Stochastic execution cost of one API call.
///
/// Each execution samples a *heavy* path with probability `manifest_p`,
/// otherwise a *light* path scaled by `light_scale` — this is how
/// occasionally-manifesting soft hang bugs (paper Section 3.2, Path B/C)
/// are modeled.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostSpec {
    /// CPU time on the calling thread.
    pub cpu: Dist,
    /// Blocked (off-CPU) time.
    pub io: Dist,
    /// Profile of the CPU portion.
    pub profile: ProfileKind,
    /// Render frames posted (UI APIs).
    pub frames: Dist,
    /// CPU cost per posted frame on the render thread.
    pub frame_ns: u64,
    /// Probability the heavy path is taken.
    pub manifest_p: f64,
    /// Scale applied to cpu/io/frames on the light path.
    pub light_scale: f64,
    /// Number of separate blocking waits the I/O time is split into
    /// (each wait is one voluntary context switch).
    pub io_chunks: u32,
    /// Whether the blocked time is network I/O (transfers bytes the
    /// network-on-main extension can observe).
    pub network: bool,
}

/// One sampled execution cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampledCost {
    /// CPU ns on the calling thread.
    pub cpu_ns: u64,
    /// Blocked ns.
    pub io_ns: u64,
    /// Render frames posted.
    pub frames: u32,
    /// Per-frame render cost.
    pub frame_ns: u64,
    /// Whether the heavy path manifested.
    pub heavy: bool,
}

impl SampledCost {
    /// Total time the call occupies the calling thread (CPU + blocked).
    pub fn busy_ns(&self) -> u64 {
        self.cpu_ns + self.io_ns
    }
}

impl CostSpec {
    /// A zero-cost spec (for wrappers).
    pub const fn none() -> CostSpec {
        CostSpec {
            cpu: Dist::ZERO,
            io: Dist::ZERO,
            profile: ProfileKind::Ui,
            frames: Dist::ZERO,
            frame_ns: 0,
            manifest_p: 1.0,
            light_scale: 1.0,
            io_chunks: 1,
            network: false,
        }
    }

    /// Builder: always-manifesting CPU-only cost.
    pub const fn cpu(cpu: Dist, profile: ProfileKind) -> CostSpec {
        CostSpec {
            cpu,
            io: Dist::ZERO,
            profile,
            frames: Dist::ZERO,
            frame_ns: 0,
            manifest_p: 1.0,
            light_scale: 1.0,
            io_chunks: 1,
            network: false,
        }
    }

    /// Builder: blocking I/O with a small CPU shim.
    pub const fn io(setup_cpu: Dist, io: Dist) -> CostSpec {
        CostSpec {
            cpu: setup_cpu,
            io,
            profile: ProfileKind::IoStub,
            frames: Dist::ZERO,
            frame_ns: 0,
            manifest_p: 1.0,
            light_scale: 1.0,
            io_chunks: 1,
            network: false,
        }
    }

    /// Builder: UI work posting render frames.
    pub const fn ui(cpu: Dist, frames: Dist, frame_ns: u64) -> CostSpec {
        CostSpec {
            cpu,
            io: Dist::ZERO,
            profile: ProfileKind::Ui,
            frames,
            frame_ns,
            manifest_p: 1.0,
            light_scale: 1.0,
            io_chunks: 1,
            network: false,
        }
    }

    /// Builder: sets occasional manifestation.
    pub const fn occasional(mut self, manifest_p: f64, light_scale: f64) -> CostSpec {
        self.manifest_p = manifest_p;
        self.light_scale = light_scale;
        self
    }

    /// Builder: overrides the profile.
    pub const fn with_profile(mut self, profile: ProfileKind) -> CostSpec {
        self.profile = profile;
        self
    }

    /// Builder: splits the blocking time into `n` separate waits.
    pub const fn chunks(mut self, n: u32) -> CostSpec {
        self.io_chunks = if n == 0 { 1 } else { n };
        self
    }

    /// Builder: marks the blocked time as network I/O.
    pub const fn network(mut self) -> CostSpec {
        self.network = true;
        self
    }

    /// Draws one execution's cost.
    pub fn sample(&self, rng: &mut hd_simrt::SimRng) -> SampledCost {
        let heavy = rng.chance(self.manifest_p);
        let scale = if heavy { 1.0 } else { self.light_scale };
        let cpu_ns = (self.cpu.sample(rng) as f64 * scale).round() as u64;
        let io_ns = (self.io.sample(rng) as f64 * scale).round() as u64;
        let frames = (self.frames.sample(rng) as f64 * scale).round() as u32;
        SampledCost {
            cpu_ns,
            io_ns,
            frames,
            frame_ns: self.frame_ns,
            heavy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_simrt::{SimRng, MILLIS};

    #[test]
    fn known_blocking_window() {
        let api = ApiSpec::new(
            "android.hardware.Camera.open",
            120,
            ApiKind::Blocking {
                known_since: Some(2011),
            },
            CostSpec::io(Dist::fixed(MILLIS), Dist::fixed(250 * MILLIS)),
        );
        assert!(!api.known_blocking_in(2010));
        assert!(api.known_blocking_in(2011));
        assert!(api.known_blocking_in(2017));
        let unknown = ApiSpec::new(
            "org.htmlcleaner.HtmlCleaner.clean",
            25,
            ApiKind::Blocking { known_since: None },
            CostSpec::cpu(Dist::fixed(MILLIS), ProfileKind::MemoryHeavy),
        );
        assert!(!unknown.known_blocking_in(2017));
    }

    #[test]
    fn file_derived_from_class() {
        let api = ApiSpec::new(
            "com.google.gson.Gson.toJson",
            946,
            ApiKind::Blocking { known_since: None },
            CostSpec::none(),
        );
        assert_eq!(api.file, "Gson.java");
        assert_eq!(api.line, 946);
    }

    #[test]
    fn occasional_sampling_splits_paths() {
        let mut rng = SimRng::seed_from_u64(9);
        let spec =
            CostSpec::cpu(Dist::fixed(300 * MILLIS), ProfileKind::Compute).occasional(0.3, 0.05);
        let samples: Vec<SampledCost> = (0..2000).map(|_| spec.sample(&mut rng)).collect();
        let heavy = samples.iter().filter(|s| s.heavy).count();
        assert!((450..750).contains(&heavy), "heavy {heavy}");
        for s in &samples {
            if s.heavy {
                assert_eq!(s.cpu_ns, 300 * MILLIS);
            } else {
                assert_eq!(s.cpu_ns, 15 * MILLIS);
            }
        }
    }

    #[test]
    fn ui_cost_posts_frames() {
        let mut rng = SimRng::seed_from_u64(1);
        let spec = CostSpec::ui(Dist::fixed(10 * MILLIS), Dist::fixed(8), 4 * MILLIS);
        let s = spec.sample(&mut rng);
        assert_eq!(s.frames, 8);
        assert_eq!(s.frame_ns, 4 * MILLIS);
        assert_eq!(s.busy_ns(), 10 * MILLIS);
    }

    #[test]
    fn closed_marker() {
        let api = ApiSpec::new("x.Y.z", 1, ApiKind::Wrapper, CostSpec::none()).closed();
        assert!(api.closed_source);
    }
}
