//! # hd-appmodel — app behaviour models and the study corpus
//!
//! The paper evaluates Hang Doctor on 114 real Android apps. This crate
//! models apps as data: an API catalog with per-call cost models
//! ([`registry`]), actions composed of call sites with ground-truth bug
//! tags ([`action`], [`app`]), a compiler that turns an action execution
//! into simulator steps plus an exact ground-truth record ([`compile`]),
//! seeded user traces ([`trace`]), and the full corpus — the 8 motivation
//! apps of Table 1, the 17 study apps of Table 5 with all 34 bugs, and
//! generated bug-free apps filling out the 114 ([`corpus`]).

pub mod action;
pub mod api;
pub mod app;
pub mod compile;
pub mod corpus;
pub mod dist;
pub mod profile;
pub mod registry;
pub mod trace;

pub use action::{ActionSpec, AsyncOp, Call, EventSpec};
pub use api::{ApiId, ApiKind, ApiSpec, CostSpec, SampledCost};
pub use app::{App, BugSpec, ExecutorSpec};
pub use compile::{CompiledApp, ExecTruth};
pub use dist::Dist;
pub use profile::ProfileKind;
pub use trace::{
    build_run, generate_schedule, round_robin_schedule, BuiltRun, Schedule, TraceParams,
};
