//! Serializable names for the simulator's memory profiles.

use hd_simrt::MemProfile;
use serde::{Deserialize, Serialize};

/// Which event-generation profile an operation's CPU work uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileKind {
    /// Light UI bookkeeping.
    Ui,
    /// Compute-bound work (loops, serialization of small objects).
    Compute,
    /// Memory-intensive work (decoding, parsing, large serialization).
    MemoryHeavy,
    /// Thin CPU shim around blocking I/O.
    IoStub,
}

impl ProfileKind {
    /// Resolves to the simulator profile.
    pub fn to_profile(self) -> MemProfile {
        match self {
            ProfileKind::Ui => MemProfile::ui(),
            ProfileKind::Compute => MemProfile::compute(),
            ProfileKind::MemoryHeavy => MemProfile::memory_heavy(),
            ProfileKind::IoStub => MemProfile::io_stub(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_distinct_profiles() {
        let kinds = [
            ProfileKind::Ui,
            ProfileKind::Compute,
            ProfileKind::MemoryHeavy,
            ProfileKind::IoStub,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(a.to_profile(), b.to_profile());
            }
        }
    }
}
