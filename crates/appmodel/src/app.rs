//! App specifications: APIs + actions + ground-truth bug inventory.

use serde::{Deserialize, Serialize};

use hd_simrt::ActionUid;

use crate::action::ActionSpec;
use crate::api::{ApiId, ApiKind, ApiSpec};

/// Ground-truth description of one soft hang bug in an app.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BugSpec {
    /// Stable id matching the `bug_id` tags on call sites.
    pub id: String,
    /// GitHub issue number (Table 5).
    pub issue: u32,
    /// The blocking API at the root of the bug.
    pub api: ApiId,
    /// Action containing the buggy call site.
    pub action: ActionUid,
    /// Short description for reports.
    pub description: String,
}

/// A bounded executor owned by the app (a serial executor when
/// `width == 1`), the target of [`crate::action::AsyncOp`] submissions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutorSpec {
    /// Thread-name prefix, e.g. `SerialExecutor` or `pool-1`.
    pub name: String,
    /// Number of threads (pool capacity).
    pub width: usize,
}

impl ExecutorSpec {
    /// Creates an executor spec.
    pub fn new(name: &str, width: usize) -> ExecutorSpec {
        ExecutorSpec {
            name: name.to_string(),
            width,
        }
    }
}

/// A complete app model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct App {
    /// Display name (Table 5 "App Name").
    pub name: String,
    /// Package, used to derive handler symbols.
    pub package: String,
    /// Play-store category.
    pub category: String,
    /// Approximate download count.
    pub downloads: u64,
    /// Version under test.
    pub commit: String,
    /// All APIs referenced by this app's actions.
    pub apis: Vec<ApiSpec>,
    /// The app's user actions.
    pub actions: Vec<ActionSpec>,
    /// Ground-truth soft hang bugs.
    pub bugs: Vec<BugSpec>,
    /// Bounded executors referenced by async call sites.
    pub executors: Vec<ExecutorSpec>,
}

impl App {
    /// Looks up an API spec.
    pub fn api(&self, id: ApiId) -> &ApiSpec {
        &self.apis[id.0]
    }

    /// Finds an action by uid.
    pub fn action(&self, uid: ActionUid) -> Option<&ActionSpec> {
        self.actions.iter().find(|a| a.uid == uid)
    }

    /// Finds a bug by id.
    pub fn bug(&self, id: &str) -> Option<&BugSpec> {
        self.bugs.iter().find(|b| b.id == id)
    }

    /// Returns a variant of the app with the given bugs fixed (their
    /// call sites offloaded to a worker thread), as a developer would do
    /// after a Hang Doctor report.
    pub fn with_bugs_fixed(&self, bug_ids: &[&str]) -> App {
        let mut fixed = self.clone();
        for action in &mut fixed.actions {
            for event in &mut action.events {
                for call in &mut event.calls {
                    if let Some(id) = &call.bug_id {
                        if bug_ids.contains(&id.as_str()) {
                            call.offloaded = true;
                        }
                    }
                }
            }
        }
        fixed
    }

    /// Returns a variant with *all* bugs fixed.
    pub fn with_all_bugs_fixed(&self) -> App {
        let ids: Vec<&str> = self.bugs.iter().map(|b| b.id.as_str()).collect();
        self.with_bugs_fixed(&ids)
    }

    /// Whether an offline scanner can see a given call site's API name.
    ///
    /// A call is invisible when the working API itself, or any wrapper it
    /// is reached through, lives in a closed-source library.
    pub fn call_visible(&self, call: &crate::action::Call) -> bool {
        if self.api(call.api).closed_source {
            return false;
        }
        call.via.iter().all(|w| !self.api(*w).closed_source)
    }

    /// Validates internal consistency (API indices, bug tags).
    ///
    /// Returns a list of problems; empty means the model is sound.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen_uids = std::collections::HashSet::new();
        for action in &self.actions {
            if !seen_uids.insert(action.uid) {
                problems.push(format!("duplicate action uid {:?}", action.uid));
            }
            for event in &action.events {
                for call in &event.calls {
                    if call.api.0 >= self.apis.len() {
                        problems.push(format!(
                            "action '{}' references missing api {:?}",
                            action.name, call.api
                        ));
                        continue;
                    }
                    for w in &call.via {
                        if w.0 >= self.apis.len() {
                            problems.push(format!(
                                "action '{}' references missing wrapper {:?}",
                                action.name, w
                            ));
                        } else if !matches!(self.api(*w).kind, ApiKind::Wrapper) {
                            problems.push(format!(
                                "action '{}' uses non-wrapper '{}' as via",
                                action.name,
                                self.api(*w).symbol
                            ));
                        }
                    }
                    if let Some(bug_id) = &call.bug_id {
                        if self.bug(bug_id).is_none() {
                            problems.push(format!("call tagged with unknown bug '{bug_id}'"));
                        }
                        if self.api(call.api).is_ui() {
                            problems.push(format!(
                                "bug '{bug_id}' tags a UI API ({})",
                                self.api(call.api).symbol
                            ));
                        }
                    }
                    if let Some(op) = &call.async_op {
                        if op.executor() >= self.executors.len() {
                            problems.push(format!(
                                "action '{}' submits to missing executor {}",
                                action.name,
                                op.executor()
                            ));
                        }
                        if call.offloaded {
                            problems.push(format!(
                                "action '{}' marks an async call site offloaded",
                                action.name
                            ));
                        }
                        if let Some(join) = op.join_api() {
                            if join.0 >= self.apis.len() {
                                problems.push(format!(
                                    "action '{}' joins through missing api {:?}",
                                    action.name, join
                                ));
                            } else if self.api(join).is_ui()
                                || matches!(self.api(join).kind, ApiKind::Wrapper)
                            {
                                problems.push(format!(
                                    "action '{}' joins through non-blocking api '{}'",
                                    action.name,
                                    self.api(join).symbol
                                ));
                            }
                        }
                    }
                }
            }
        }
        for bug in &self.bugs {
            let tagged = self
                .actions
                .iter()
                .flat_map(|a| a.calls())
                .any(|c| c.bug_id.as_deref() == Some(bug.id.as_str()));
            if !tagged {
                problems.push(format!("bug '{}' has no tagged call site", bug.id));
            }
            if self.action(bug.action).is_none() {
                problems.push(format!("bug '{}' names missing action", bug.id));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Call, EventSpec};
    use crate::api::CostSpec;
    use crate::dist::Dist;
    use hd_simrt::MILLIS;

    fn tiny_app() -> App {
        let apis = vec![
            ApiSpec::new(
                "android.widget.TextView.setText",
                100,
                ApiKind::Ui,
                CostSpec::ui(Dist::fixed(5 * MILLIS), Dist::fixed(3), 4 * MILLIS),
            ),
            ApiSpec::new(
                "android.hardware.Camera.open",
                120,
                ApiKind::Blocking {
                    known_since: Some(2011),
                },
                CostSpec::io(Dist::fixed(MILLIS), Dist::fixed(250 * MILLIS)),
            ),
            ApiSpec::new(
                "org.lib.Wrapper.call",
                10,
                ApiKind::Wrapper,
                CostSpec::none(),
            )
            .closed(),
        ];
        App {
            name: "Tiny".into(),
            package: "org.tiny".into(),
            category: "Tools".into(),
            downloads: 100,
            commit: "abc123".into(),
            apis,
            actions: vec![ActionSpec::new(
                0,
                "resume",
                vec![EventSpec::new(
                    "org.tiny.Main.onResume",
                    40,
                    vec![
                        Call::direct(ApiId(0)),
                        Call::direct(ApiId(1)).bug("tiny-1"),
                        Call::via(vec![ApiId(2)], ApiId(1)).bug("tiny-2"),
                    ],
                )],
            )],
            bugs: vec![
                BugSpec {
                    id: "tiny-1".into(),
                    issue: 1,
                    api: ApiId(1),
                    action: ActionUid(0),
                    description: "camera open on main thread".into(),
                },
                BugSpec {
                    id: "tiny-2".into(),
                    issue: 2,
                    api: ApiId(1),
                    action: ActionUid(0),
                    description: "camera open via closed wrapper".into(),
                },
            ],
            executors: vec![],
        }
    }

    #[test]
    fn tiny_app_validates() {
        assert!(tiny_app().validate().is_empty());
    }

    #[test]
    fn visibility_respects_closed_wrappers() {
        let app = tiny_app();
        let action = &app.actions[0];
        let calls: Vec<&Call> = action.calls().collect();
        assert!(app.call_visible(calls[0]));
        assert!(app.call_visible(calls[1]));
        assert!(!app.call_visible(calls[2]));
    }

    #[test]
    fn fixing_bugs_offloads_their_calls() {
        let app = tiny_app();
        let fixed = app.with_bugs_fixed(&["tiny-1"]);
        let calls: Vec<&Call> = fixed.actions[0].calls().collect();
        assert!(!calls[0].offloaded);
        assert!(calls[1].offloaded);
        assert!(!calls[2].offloaded);
        let all = app.with_all_bugs_fixed();
        let calls: Vec<&Call> = all.actions[0].calls().collect();
        assert!(calls[1].offloaded && calls[2].offloaded);
    }

    #[test]
    fn validation_catches_bad_references() {
        let mut app = tiny_app();
        app.actions[0].events[0].calls[0].api = ApiId(99);
        assert!(!app.validate().is_empty());

        let mut app = tiny_app();
        app.actions[0].events[0].calls[0] = Call::direct(ApiId(0)).bug("nonexistent");
        assert!(app.validate().iter().any(|p| p.contains("unknown bug")));

        let mut app = tiny_app();
        // Tag a UI API as a bug: invalid by definition.
        app.actions[0].events[0].calls[0] = Call::direct(ApiId(0)).bug("tiny-1");
        assert!(app.validate().iter().any(|p| p.contains("UI API")));
    }

    #[test]
    fn validation_checks_async_references() {
        // Submitting to an executor the app does not declare.
        let mut app = tiny_app();
        app.actions[0].events[0].calls[1] = app.actions[0].events[0].calls[1].clone().submit_to(0);
        assert!(app
            .validate()
            .iter()
            .any(|p| p.contains("missing executor")));

        // Declaring it fixes the problem.
        app.executors.push(ExecutorSpec::new("SerialExecutor", 1));
        assert!(app.validate().is_empty());

        // Joining through a UI API is rejected.
        let mut app = tiny_app();
        app.executors.push(ExecutorSpec::new("SerialExecutor", 1));
        app.actions[0].events[0].calls[1] = app.actions[0].events[0].calls[1]
            .clone()
            .submit_join(0, ApiId(0));
        assert!(app
            .validate()
            .iter()
            .any(|p| p.contains("non-blocking api")));

        // offloaded + async on the same site is contradictory.
        let mut app = tiny_app();
        app.executors.push(ExecutorSpec::new("SerialExecutor", 1));
        app.actions[0].events[0].calls[1] = app.actions[0].events[0].calls[1]
            .clone()
            .submit_to(0)
            .offload();
        assert!(app.validate().iter().any(|p| p.contains("offloaded")));
    }

    #[test]
    fn validation_catches_untagged_bug() {
        let mut app = tiny_app();
        app.bugs.push(BugSpec {
            id: "ghost".into(),
            issue: 9,
            api: ApiId(1),
            action: ActionUid(0),
            description: "no call site".into(),
        });
        assert!(app
            .validate()
            .iter()
            .any(|p| p.contains("no tagged call site")));
    }
}
