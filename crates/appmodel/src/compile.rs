//! Compilation of app models into executable step sequences.
//!
//! A [`CompiledApp`] interns every stack frame the app can produce and
//! turns an action execution into an [`ActionRequest`] (concrete steps
//! with sampled costs) plus an [`ExecTruth`] — the ground-truth record of
//! how much main-thread blocking each bug contributed to that execution,
//! which the evaluation harness scores detectors against.

use std::sync::Arc;

use hd_simrt::{ActionRequest, ActionUid, FrameId, FrameTable, SimRng, Step, MICROS};
use serde::{Deserialize, Serialize};

use crate::action::{Call, EventSpec};
use crate::app::App;

/// CPU cost on the main thread of posting a task to a worker
/// (`AsyncTask.execute` analog) in a fixed app variant.
const POST_WORKER_CPU_NS: u64 = 150 * MICROS;

/// Ground truth for one action execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecTruth {
    /// Action kind.
    pub uid: ActionUid,
    /// Action name.
    pub action_name: String,
    /// Sampled main-thread busy time (CPU + blocked) of each bug call in
    /// this execution. Offloaded (fixed) calls contribute zero.
    pub bug_ns: Vec<(String, u64)>,
    /// Sampled main-thread busy time of every non-bug call.
    pub other_main_ns: u64,
}

impl ExecTruth {
    /// The bug contributing the most main-thread blocking, if any bug
    /// contributed at least `min_ns`.
    pub fn culprit(&self, min_ns: u64) -> Option<&str> {
        self.bug_ns
            .iter()
            .filter(|(_, ns)| *ns >= min_ns)
            .max_by_key(|(_, ns)| *ns)
            .map(|(id, _)| id.as_str())
    }

    /// Whether this execution contains a bug manifestation of at least
    /// `min_ns` of main-thread blocking.
    pub fn is_buggy(&self, min_ns: u64) -> bool {
        self.culprit(min_ns).is_some()
    }

    /// Total sampled bug blocking in this execution.
    pub fn total_bug_ns(&self) -> u64 {
        self.bug_ns.iter().map(|(_, ns)| ns).sum()
    }
}

/// An app with its frames interned, ready to generate executions.
///
/// Compile once, share everywhere: the frame table is behind an `Arc`
/// so every simulator seeded from this app holds the same immutable
/// table, and the fleet engine shares one `Arc<CompiledApp>` across all
/// device×trace jobs of an app.
#[derive(Clone, Debug)]
pub struct CompiledApp {
    app: App,
    table: Arc<FrameTable>,
    api_frames: Vec<FrameId>,
    /// `handler_frames[action_index][event_index]`.
    handler_frames: Vec<Vec<FrameId>>,
    looper_frame: FrameId,
    dispatch_frame: FrameId,
}

impl CompiledApp {
    /// Interns all frames of `app`.
    ///
    /// # Panics
    ///
    /// Panics if the app fails [`App::validate`]; compile errors in the
    /// hand-written corpus should surface loudly.
    pub fn new(app: App) -> CompiledApp {
        let problems = app.validate();
        assert!(
            problems.is_empty(),
            "app '{}' is inconsistent: {problems:?}",
            app.name
        );
        let mut table = FrameTable::new();
        let looper_frame = table.intern_new("android.os.Looper.loop", "Looper.java", 193);
        let dispatch_frame =
            table.intern_new("android.os.Handler.dispatchMessage", "Handler.java", 105);
        let api_frames = app
            .apis
            .iter()
            .map(|a| table.intern_new(&a.symbol, &a.file, a.line))
            .collect();
        let handler_frames = app
            .actions
            .iter()
            .map(|action| {
                action
                    .events
                    .iter()
                    .map(|e| {
                        let file = e
                            .handler
                            .rsplit_once('.')
                            .map(|(class, _)| {
                                let short = class.rsplit_once('.').map(|(_, s)| s).unwrap_or(class);
                                format!("{short}.java")
                            })
                            .unwrap_or_else(|| "App.java".to_string());
                        table.intern_new(&e.handler, &file, e.handler_line)
                    })
                    .collect()
            })
            .collect();
        CompiledApp {
            app,
            table: Arc::new(table),
            api_frames,
            handler_frames,
            looper_frame,
            dispatch_frame,
        }
    }

    /// The underlying app model.
    pub fn app(&self) -> &App {
        &self.app
    }

    /// A shared handle to the frame table, to seed a `Simulator`.
    /// Cheap: bumps a refcount instead of deep-cloning the table.
    pub fn frame_table(&self) -> Arc<FrameTable> {
        Arc::clone(&self.table)
    }

    /// The frame id of an API.
    pub fn api_frame(&self, api: crate::api::ApiId) -> FrameId {
        self.api_frames[api.0]
    }

    /// Samples one execution of action `uid`.
    ///
    /// # Panics
    ///
    /// Panics if `uid` does not exist in the app.
    pub fn sample(&self, uid: ActionUid, rng: &mut SimRng) -> (ActionRequest, ExecTruth) {
        let (action_idx, action) = self
            .app
            .actions
            .iter()
            .enumerate()
            .find(|(_, a)| a.uid == uid)
            .unwrap_or_else(|| panic!("app '{}' has no action {uid:?}", self.app.name));
        let mut truth = ExecTruth {
            uid,
            action_name: action.name.clone(),
            bug_ns: Vec::new(),
            other_main_ns: 0,
        };
        let events = action
            .events
            .iter()
            .enumerate()
            .map(|(ei, event)| {
                self.compile_event(event, self.handler_frames[action_idx][ei], rng, &mut truth)
            })
            .collect();
        (
            ActionRequest {
                uid,
                name: action.name.clone(),
                events,
            },
            truth,
        )
    }

    fn compile_event(
        &self,
        event: &EventSpec,
        handler: FrameId,
        rng: &mut SimRng,
        truth: &mut ExecTruth,
    ) -> Vec<Step> {
        let mut steps = vec![
            Step::Push(self.looper_frame),
            Step::Push(self.dispatch_frame),
            Step::Push(handler),
        ];
        // Future tokens are scoped per event (one message = one item in
        // the simulator, which scopes its handles the same way).
        let mut next_token = 0u32;
        for call in &event.calls {
            self.compile_call(call, &mut steps, rng, truth, &mut next_token);
        }
        steps.push(Step::Pop);
        steps.push(Step::Pop);
        steps.push(Step::Pop);
        steps
    }

    fn compile_call(
        &self,
        call: &Call,
        steps: &mut Vec<Step>,
        rng: &mut SimRng,
        truth: &mut ExecTruth,
        next_token: &mut u32,
    ) {
        let api = self.app.api(call.api);
        let cost = api.cost.sample(rng);
        let mut inner = Vec::new();
        for w in &call.via {
            inner.push(Step::Push(self.api_frames[w.0]));
        }
        inner.push(Step::Push(self.api_frames[call.api.0]));
        if cost.cpu_ns > 0 {
            inner.push(Step::Cpu {
                ns: cost.cpu_ns,
                profile: api.cost.profile.to_profile(),
            });
        }
        if cost.io_ns > 0 {
            // Split into separate waits: each is one voluntary context
            // switch, which is what makes I/O-bound bugs visible to the
            // context-switch symptom.
            let chunks = u64::from(api.cost.io_chunks.max(1));
            let per = cost.io_ns / chunks;
            let mut left = cost.io_ns;
            // ~50 KB of traffic per blocked millisecond for network ops.
            let io_step = |ns: u64| {
                if api.cost.network {
                    Step::NetIo { ns, bytes: ns / 20 }
                } else {
                    Step::Io { ns }
                }
            };
            for _ in 0..chunks {
                let ns = per.min(left).max(1);
                inner.push(io_step(ns));
                left = left.saturating_sub(ns);
                if left == 0 {
                    break;
                }
            }
            if left > 0 {
                inner.push(io_step(left));
            }
        }
        if cost.frames > 0 {
            inner.push(Step::PostRender {
                frames: cost.frames,
                frame_ns: cost.frame_ns,
            });
        }
        for _ in 0..=call.via.len() {
            inner.push(Step::Pop);
        }
        if let Some(op) = &call.async_op {
            // Async variant: the main thread pays the posting cost; the
            // body runs as a task on a bounded executor. A joined submit
            // additionally parks the main thread in the join API until
            // the task completes (a wait edge the simulator honors).
            let token = *next_token;
            *next_token += 1;
            steps.push(Step::Cpu {
                ns: POST_WORKER_CPU_NS,
                profile: crate::profile::ProfileKind::Ui.to_profile(),
            });
            steps.push(Step::PostTask {
                executor: op.executor() as u32,
                token,
                steps: inner,
            });
            if let Some(join) = op.join_api() {
                steps.push(Step::Push(self.api_frames[join.0]));
                steps.push(Step::JoinTask { token });
                steps.push(Step::Pop);
            }
            // Ground truth: a tagged async site delays the main thread
            // through the wait edge by its whole busy time (the convoy
            // head delays joins queued behind it the same way), so it is
            // charged as bug blocking even though it runs off-main.
            match &call.bug_id {
                Some(id) => truth.bug_ns.push((id.clone(), cost.busy_ns())),
                None => truth.other_main_ns += POST_WORKER_CPU_NS,
            }
        } else if call.offloaded {
            // Fixed variant: the main thread only pays the posting cost;
            // the blocking work runs on a worker.
            steps.push(Step::Cpu {
                ns: POST_WORKER_CPU_NS,
                profile: crate::profile::ProfileKind::Ui.to_profile(),
            });
            steps.push(Step::PostWorker(inner));
            if let Some(id) = &call.bug_id {
                truth.bug_ns.push((id.clone(), 0));
            }
            truth.other_main_ns += POST_WORKER_CPU_NS;
        } else {
            steps.extend(inner);
            match &call.bug_id {
                Some(id) => truth.bug_ns.push((id.clone(), cost.busy_ns())),
                None => truth.other_main_ns += cost.busy_ns(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionSpec, Call, EventSpec};
    use crate::api::{ApiId, ApiKind, ApiSpec, CostSpec};
    use crate::app::BugSpec;
    use crate::dist::Dist;
    use hd_simrt::{nominal_duration, MILLIS};

    fn test_app() -> App {
        let apis = vec![
            ApiSpec::new(
                "android.widget.TextView.setText",
                100,
                ApiKind::Ui,
                CostSpec::ui(Dist::fixed(10 * MILLIS), Dist::fixed(4), 4 * MILLIS),
            ),
            ApiSpec::new(
                "org.htmlcleaner.HtmlCleaner.clean",
                25,
                ApiKind::Blocking { known_since: None },
                CostSpec::cpu(
                    Dist::fixed(400 * MILLIS),
                    crate::profile::ProfileKind::MemoryHeavy,
                ),
            ),
            ApiSpec::new(
                "com.example.Helper.load",
                7,
                ApiKind::Wrapper,
                CostSpec::none(),
            ),
        ];
        App {
            name: "T".into(),
            package: "org.t".into(),
            category: "Tools".into(),
            downloads: 1,
            commit: "x".into(),
            apis,
            actions: vec![ActionSpec::new(
                0,
                "open",
                vec![EventSpec::new(
                    "org.t.Main.onOpen",
                    12,
                    vec![
                        Call::direct(ApiId(0)),
                        Call::via(vec![ApiId(2)], ApiId(1)).bug("t-1"),
                    ],
                )],
            )],
            bugs: vec![BugSpec {
                id: "t-1".into(),
                issue: 1,
                api: ApiId(1),
                action: hd_simrt::ActionUid(0),
                description: "clean on main".into(),
            }],
            executors: vec![],
        }
    }

    #[test]
    fn sample_produces_request_and_truth() {
        let compiled = CompiledApp::new(test_app());
        let mut rng = SimRng::seed_from_u64(1);
        let (req, truth) = compiled.sample(ActionUid(0), &mut rng);
        assert_eq!(req.events.len(), 1);
        let (cpu, io) = nominal_duration(&req.events[0]);
        assert_eq!(cpu, 410 * MILLIS);
        assert_eq!(io, 0);
        assert_eq!(truth.bug_ns, vec![("t-1".to_string(), 400 * MILLIS)]);
        assert_eq!(truth.other_main_ns, 10 * MILLIS);
        assert_eq!(truth.culprit(100 * MILLIS), Some("t-1"));
        assert!(truth.is_buggy(100 * MILLIS));
        assert_eq!(truth.total_bug_ns(), 400 * MILLIS);
    }

    #[test]
    fn stack_depth_balances() {
        let compiled = CompiledApp::new(test_app());
        let mut rng = SimRng::seed_from_u64(2);
        let (req, _) = compiled.sample(ActionUid(0), &mut rng);
        let mut depth: i64 = 0;
        let mut max_depth = 0;
        for s in &req.events[0] {
            match s {
                Step::Push(_) => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                Step::Pop => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        // looper + dispatch + handler + wrapper + api.
        assert_eq!(max_depth, 5);
    }

    #[test]
    fn fixed_variant_moves_bug_off_main() {
        let app = test_app().with_bugs_fixed(&["t-1"]);
        let compiled = CompiledApp::new(app);
        let mut rng = SimRng::seed_from_u64(3);
        let (req, truth) = compiled.sample(ActionUid(0), &mut rng);
        let (cpu, _) = nominal_duration(&req.events[0]);
        // Main thread only pays the UI call plus the post cost.
        assert!(cpu < 15 * MILLIS, "main cpu {cpu}");
        assert_eq!(truth.bug_ns, vec![("t-1".to_string(), 0)]);
        assert!(!truth.is_buggy(100 * MILLIS));
        // The worker task carries the blocking work.
        let has_worker = req.events[0].iter().any(
            |s| matches!(s, Step::PostWorker(inner) if nominal_duration(inner).0 >= 400 * MILLIS),
        );
        assert!(has_worker);
    }

    #[test]
    fn async_submit_join_compiles_to_wait_edge() {
        use crate::app::ExecutorSpec;
        let mut app = test_app();
        app.executors.push(ExecutorSpec::new("SerialExecutor", 1));
        app.apis.push(ApiSpec::new(
            "java.util.concurrent.FutureTask.get",
            187,
            ApiKind::Blocking { known_since: None },
            CostSpec::none(),
        ));
        app.actions[0].events[0].calls[1] = app.actions[0].events[0].calls[1]
            .clone()
            .submit_join(0, ApiId(3));
        let compiled = CompiledApp::new(app);
        let mut rng = SimRng::seed_from_u64(4);
        let (req, truth) = compiled.sample(ActionUid(0), &mut rng);
        let ev = &req.events[0];
        let post_at = ev
            .iter()
            .position(|s| {
                matches!(
                    s,
                    Step::PostTask {
                        executor: 0,
                        token: 0,
                        ..
                    }
                )
            })
            .expect("PostTask emitted");
        let join_at = ev
            .iter()
            .position(|s| matches!(s, Step::JoinTask { token: 0 }))
            .expect("JoinTask emitted");
        assert!(post_at < join_at, "join must follow its submit edge");
        // The task body carries the blocking work off the main steps.
        match &ev[post_at] {
            Step::PostTask { steps, .. } => {
                assert_eq!(nominal_duration(steps).0, 400 * MILLIS);
            }
            _ => unreachable!(),
        }
        // Main-thread inline CPU excludes the task body.
        assert!(nominal_duration(ev).0 < 15 * MILLIS);
        // ...but the tagged site is still charged as bug blocking,
        // because the wait edge holds main for the task's busy time.
        assert_eq!(truth.bug_ns, vec![("t-1".to_string(), 400 * MILLIS)]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn compiling_invalid_app_panics() {
        let mut app = test_app();
        app.actions[0].events[0].calls[0].api = ApiId(42);
        CompiledApp::new(app);
    }

    #[test]
    fn culprit_requires_minimum_blocking() {
        let truth = ExecTruth {
            uid: ActionUid(0),
            action_name: "a".into(),
            bug_ns: vec![("b1".into(), 50 * MILLIS), ("b2".into(), 80 * MILLIS)],
            other_main_ns: 0,
        };
        assert_eq!(truth.culprit(100 * MILLIS), None);
        assert_eq!(truth.culprit(40 * MILLIS), Some("b2"));
    }
}
