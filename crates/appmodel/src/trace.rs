//! User traces and run assembly.
//!
//! The paper tests apps "in the wild": 20 users interacting with their
//! apps over 60 days. We generate seeded user sessions — weighted action
//! choices separated by think time — and assemble them into a ready
//! [`Simulator`] plus the per-execution ground truth the evaluation
//! scores against.

use hd_simrt::{ActionUid, ExecId, SimConfig, SimRng, SimTime, Simulator, MILLIS};
use serde::{Deserialize, Serialize};

use crate::app::App;
use crate::compile::{CompiledApp, ExecTruth};

/// A schedule of action arrivals for one run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// `(arrival time, action uid)` pairs, time-ordered.
    pub arrivals: Vec<(SimTime, ActionUid)>,
}

impl Schedule {
    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Parameters for user-trace generation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceParams {
    /// Number of action executions.
    pub actions: usize,
    /// Minimum think time between actions, ms.
    pub think_min_ms: u64,
    /// Maximum think time between actions, ms.
    pub think_max_ms: u64,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            actions: 60,
            think_min_ms: 1_500,
            think_max_ms: 4_000,
        }
    }
}

/// Generates a weighted random user session over `app`'s actions.
pub fn generate_schedule(app: &App, params: TraceParams, rng: &mut SimRng) -> Schedule {
    assert!(!app.actions.is_empty(), "app '{}' has no actions", app.name);
    let total_weight: f64 = app.actions.iter().map(|a| a.weight).sum();
    let mut arrivals = Vec::with_capacity(params.actions);
    let mut t = SimTime::from_ms(rng.uniform_u64(200, 1_000));
    for _ in 0..params.actions {
        let mut pick = rng.uniform_f64(0.0, total_weight);
        let mut chosen = app.actions.last().expect("non-empty").uid;
        for a in &app.actions {
            if pick < a.weight {
                chosen = a.uid;
                break;
            }
            pick -= a.weight;
        }
        arrivals.push((t, chosen));
        let think = rng.uniform_u64(
            params.think_min_ms,
            params.think_max_ms.max(params.think_min_ms + 1),
        );
        t += think * MILLIS;
    }
    Schedule { arrivals }
}

/// A schedule that executes every action of the app round-robin, useful
/// for deterministic coverage (training, examples).
pub fn round_robin_schedule(app: &App, repetitions: usize, gap_ms: u64) -> Schedule {
    let mut arrivals = Vec::new();
    let mut t = SimTime::from_ms(500);
    for _ in 0..repetitions {
        for a in &app.actions {
            arrivals.push((t, a.uid));
            t += gap_ms * MILLIS;
        }
    }
    Schedule { arrivals }
}

/// A simulator loaded with a schedule, plus the ground truth of every
/// scheduled execution.
pub struct BuiltRun {
    /// The simulator, ready for probes and `run()`.
    pub sim: Simulator,
    /// Ground truth, indexed by `exec_id - 1` (executions are numbered
    /// in arrival order).
    pub truths: Vec<ExecTruth>,
}

impl BuiltRun {
    /// Ground truth of an execution.
    pub fn truth(&self, exec: ExecId) -> &ExecTruth {
        &self.truths[(exec.0 - 1) as usize]
    }
}

/// Samples every scheduled execution of `app` and loads a simulator.
///
/// `seed` controls both the cost sampling and the simulator's internal
/// stream, so a `(app, schedule, seed)` triple is fully reproducible.
pub fn build_run(
    compiled: &CompiledApp,
    schedule: &Schedule,
    sim_cfg: SimConfig,
    seed: u64,
) -> BuiltRun {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    // Shared Arc handle: no per-run deep clone of the frame table.
    let mut sim = Simulator::new(SimConfig { seed, ..sim_cfg }, compiled.frame_table());
    // Executors declared by the app exist before any action posts to
    // them (registration draws no RNG, so apps without executors keep
    // their exact schedules).
    for ex in &compiled.app().executors {
        sim.add_executor(&ex.name, ex.width);
    }
    sim.reserve_actions(schedule.arrivals.len());
    let mut truths = Vec::with_capacity(schedule.arrivals.len());
    for &(at, uid) in &schedule.arrivals {
        let (req, truth) = compiled.sample(uid, &mut rng);
        truths.push(truth);
        sim.schedule_action(at, req);
    }
    BuiltRun { sim, truths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionSpec, Call, EventSpec};
    use crate::api::{ApiKind, ApiSpec, CostSpec};
    use crate::dist::Dist;
    use crate::profile::ProfileKind;

    fn two_action_app() -> App {
        let apis = vec![
            ApiSpec::new(
                "android.widget.TextView.setText",
                1,
                ApiKind::Ui,
                CostSpec::ui(Dist::fixed(10 * MILLIS), Dist::fixed(3), 4 * MILLIS),
            ),
            ApiSpec::new(
                "x.Slow.parse",
                2,
                ApiKind::Blocking { known_since: None },
                CostSpec::cpu(Dist::fixed(300 * MILLIS), ProfileKind::Compute),
            ),
        ];
        App {
            name: "Two".into(),
            package: "x".into(),
            category: "Tools".into(),
            downloads: 10,
            commit: "c".into(),
            apis,
            actions: vec![
                ActionSpec::new(
                    0,
                    "light",
                    vec![EventSpec::new(
                        "x.Main.onTap",
                        5,
                        vec![Call::direct(crate::api::ApiId(0))],
                    )],
                )
                .weighted(3.0),
                ActionSpec::new(
                    1,
                    "heavy",
                    vec![EventSpec::new(
                        "x.Main.onOpen",
                        9,
                        vec![Call::direct(crate::api::ApiId(1)).bug("two-1")],
                    )],
                ),
            ],
            bugs: vec![crate::app::BugSpec {
                id: "two-1".into(),
                issue: 1,
                api: crate::api::ApiId(1),
                action: ActionUid(1),
                description: "slow parse".into(),
            }],
            executors: vec![],
        }
    }

    #[test]
    fn weighted_schedule_respects_weights() {
        let app = two_action_app();
        let mut rng = SimRng::seed_from_u64(5);
        let sched = generate_schedule(
            &app,
            TraceParams {
                actions: 4000,
                think_min_ms: 10,
                think_max_ms: 20,
            },
            &mut rng,
        );
        let light = sched
            .arrivals
            .iter()
            .filter(|(_, uid)| *uid == ActionUid(0))
            .count();
        let frac = light as f64 / 4000.0;
        assert!((0.70..0.80).contains(&frac), "light fraction {frac}");
        // Arrivals are time-ordered.
        for w in sched.arrivals.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn round_robin_covers_all_actions() {
        let app = two_action_app();
        let sched = round_robin_schedule(&app, 3, 1000);
        assert_eq!(sched.len(), 6);
        let heavy = sched
            .arrivals
            .iter()
            .filter(|(_, uid)| *uid == ActionUid(1))
            .count();
        assert_eq!(heavy, 3);
    }

    #[test]
    fn build_run_aligns_truth_with_records() {
        let app = two_action_app();
        let compiled = CompiledApp::new(app);
        let sched = round_robin_schedule(compiled.app(), 2, 2000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 7);
        run.sim.run();
        let records = run.sim.records();
        assert_eq!(records.len(), 4);
        assert_eq!(run.truths.len(), 4);
        for rec in records {
            let truth = run.truth(rec.exec_id);
            assert_eq!(truth.uid, rec.uid);
            if truth.is_buggy(100 * MILLIS) {
                assert!(
                    rec.max_response_ns() > 100 * MILLIS,
                    "buggy exec should hang: {}",
                    rec.max_response_ns()
                );
            } else {
                assert!(rec.max_response_ns() < 100 * MILLIS);
            }
        }
    }

    #[test]
    fn build_run_is_reproducible() {
        let compiled = CompiledApp::new(two_action_app());
        let sched = round_robin_schedule(compiled.app(), 2, 1500);
        let responses = |seed| {
            let mut run = build_run(&compiled, &sched, SimConfig::default(), seed);
            run.sim.run();
            run.sim
                .records()
                .iter()
                .map(|r| r.max_response_ns())
                .collect::<Vec<_>>()
        };
        assert_eq!(responses(11), responses(11));
        assert_ne!(responses(11), responses(12));
    }
}
