//! Actions, input events, and call sites.
//!
//! An [`ActionSpec`] is the static description of one user action kind:
//! which input events it delivers and which APIs each event's handler
//! calls (possibly through wrapper frames). Ground truth lives here too:
//! a call site may be tagged with the bug it implements, which is what
//! the evaluation harness counts true/false positives against.

use serde::{Deserialize, Serialize};

use hd_simrt::ActionUid;

use crate::api::ApiId;

/// Asynchronous structure of a call site: the call body is submitted as
/// a task to one of the app's bounded executors instead of running
/// inline on the main thread.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AsyncOp {
    /// Fire-and-forget submission to executor `executor` (index into
    /// [`crate::app::App::executors`]).
    Submit {
        /// Target executor.
        executor: usize,
    },
    /// Submission followed by a main-thread future join: the main
    /// thread posts the task, then blocks in `join_api` (e.g.
    /// `FutureTask.get`) until the task completes — a wait edge.
    SubmitJoin {
        /// Target executor.
        executor: usize,
        /// The API the main thread blocks in while waiting.
        join_api: ApiId,
    },
}

impl AsyncOp {
    /// The executor the task is submitted to.
    pub fn executor(&self) -> usize {
        match self {
            AsyncOp::Submit { executor } | AsyncOp::SubmitJoin { executor, .. } => *executor,
        }
    }

    /// The main-thread join API, when the submission is joined.
    pub fn join_api(&self) -> Option<ApiId> {
        match self {
            AsyncOp::Submit { .. } => None,
            AsyncOp::SubmitJoin { join_api, .. } => Some(*join_api),
        }
    }
}

/// One call site inside an input-event handler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Call {
    /// Wrapper chain between the handler and the working API, outermost
    /// first (library entry points, self-developed helpers).
    pub via: Vec<ApiId>,
    /// The API that does the work.
    pub api: ApiId,
    /// Ground-truth bug id if this call site is a soft hang bug
    /// (e.g. `"k9mail-1007-clean"`).
    pub bug_id: Option<String>,
    /// Whether the (fixed variant of the) app offloads this call to a
    /// worker thread.
    pub offloaded: bool,
    /// Asynchronous submission structure, if the call body runs as an
    /// executor task rather than inline.
    pub async_op: Option<AsyncOp>,
}

impl Call {
    /// A direct call to `api`.
    pub fn direct(api: ApiId) -> Call {
        Call {
            via: Vec::new(),
            api,
            bug_id: None,
            offloaded: false,
            async_op: None,
        }
    }

    /// A call to `api` through the given wrapper chain.
    pub fn via(wrappers: Vec<ApiId>, api: ApiId) -> Call {
        Call {
            via: wrappers,
            api,
            bug_id: None,
            offloaded: false,
            async_op: None,
        }
    }

    /// Tags this call site as a ground-truth bug.
    pub fn bug(mut self, id: &str) -> Call {
        self.bug_id = Some(id.to_string());
        self
    }

    /// Marks this call site as posted to a worker thread.
    pub fn offload(mut self) -> Call {
        self.offloaded = true;
        self
    }

    /// Submits the call body to executor `executor`, fire-and-forget.
    pub fn submit_to(mut self, executor: usize) -> Call {
        self.async_op = Some(AsyncOp::Submit { executor });
        self
    }

    /// Submits the call body to executor `executor` and joins the
    /// resulting future on the main thread through `join_api`.
    pub fn submit_join(mut self, executor: usize, join_api: ApiId) -> Call {
        self.async_op = Some(AsyncOp::SubmitJoin { executor, join_api });
        self
    }
}

/// One input event of an action: a handler symbol plus its calls.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventSpec {
    /// The handler method, e.g. `org.myapp.MainActivity.onClick`.
    pub handler: String,
    /// Source line of the handler.
    pub handler_line: u32,
    /// Calls the handler makes, in order.
    pub calls: Vec<Call>,
}

impl EventSpec {
    /// Creates an event with the given handler and calls.
    pub fn new(handler: &str, handler_line: u32, calls: Vec<Call>) -> EventSpec {
        EventSpec {
            handler: handler.to_string(),
            handler_line,
            calls,
        }
    }
}

/// One user action kind of an app.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActionSpec {
    /// App Injector UID.
    pub uid: ActionUid,
    /// Human-readable name ("open email", "scroll timeline").
    pub name: String,
    /// Input events delivered per execution.
    pub events: Vec<EventSpec>,
    /// Relative frequency in generated user traces.
    pub weight: f64,
}

impl ActionSpec {
    /// Creates an action with weight 1.
    pub fn new(uid: u64, name: &str, events: Vec<EventSpec>) -> ActionSpec {
        ActionSpec {
            uid: ActionUid(uid),
            name: name.to_string(),
            events,
            weight: 1.0,
        }
    }

    /// Sets the trace weight.
    pub fn weighted(mut self, w: f64) -> ActionSpec {
        self.weight = w;
        self
    }

    /// Iterates over all call sites of the action.
    pub fn calls(&self) -> impl Iterator<Item = &Call> {
        self.events.iter().flat_map(|e| e.calls.iter())
    }

    /// Returns the ground-truth bug ids present in this action.
    pub fn bug_ids(&self) -> Vec<&str> {
        self.calls().filter_map(|c| c.bug_id.as_deref()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_tagging_and_enumeration() {
        let a = ActionSpec::new(
            1,
            "open email",
            vec![EventSpec::new(
                "com.fsck.k9.MessageView.onOpen",
                371,
                vec![
                    Call::direct(ApiId(0)),
                    Call::via(vec![ApiId(1)], ApiId(2)).bug("k9mail-1007-clean"),
                ],
            )],
        );
        assert_eq!(a.bug_ids(), vec!["k9mail-1007-clean"]);
        assert_eq!(a.calls().count(), 2);
        assert_eq!(a.weight, 1.0);
        assert_eq!(a.weighted(3.0).weight, 3.0);
    }

    #[test]
    fn direct_call_has_empty_via() {
        let c = Call::direct(ApiId(5));
        assert!(c.via.is_empty());
        assert!(c.bug_id.is_none());
        assert!(!c.offloaded);
    }
}
