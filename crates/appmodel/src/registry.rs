//! Catalog of Android framework / library APIs shared across the corpus.
//!
//! The study apps all draw from a common pool of UI APIs, well-known
//! blocking APIs (with the year each became documented as blocking —
//! `camera.open` in 2011, `mediaplayer.prepare` / `bitmap.decode` /
//! `bluetooth.accept` in 2012, per Section 2.2), and blocking APIs that
//! remain *unknown* to offline detectors at study time. Each constructor
//! returns a fresh [`ApiSpec`]; apps intern them into their own API list
//! through [`ApiSet`].

use hd_simrt::MILLIS;

use crate::api::{ApiId, ApiKind, ApiSpec, CostSpec};
use crate::dist::Dist;
use crate::profile::ProfileKind;

/// Builder collecting an app's API list.
#[derive(Debug, Default)]
pub struct ApiSet {
    apis: Vec<ApiSpec>,
}

impl ApiSet {
    /// Creates an empty set.
    pub fn new() -> ApiSet {
        ApiSet::default()
    }

    /// Adds a spec, returning its id.
    pub fn add(&mut self, spec: ApiSpec) -> ApiId {
        self.apis.push(spec);
        ApiId(self.apis.len() - 1)
    }

    /// Finishes the set.
    pub fn into_vec(self) -> Vec<ApiSpec> {
        self.apis
    }
}

const MS: u64 = MILLIS;

// ---- UI APIs (must stay on the main thread; never soft hang bugs) ------
//
// Most UI APIs generate substantially more render-thread work than
// main-thread work, which is exactly why main-minus-render counter
// differences separate UI operations from soft hang bugs (Figure 4).
// A few (map tile drawing, WebView relayout) are main-thread-heavy and
// act as the false-positive sources the Diagnoser must prune.

/// `TextView.setText`: trivial text update.
pub fn ui_set_text() -> ApiSpec {
    ApiSpec::new(
        "android.widget.TextView.setText",
        4100,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(6 * MS, 0.3), Dist::new(4, 0.3), 4 * MS),
    )
}

/// `LayoutInflater.inflate`: builds a view hierarchy; can be slow for
/// complex layouts.
pub fn ui_inflate() -> ApiSpec {
    ApiSpec::new(
        "android.view.LayoutInflater.inflate",
        480,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(55 * MS, 0.35), Dist::new(24, 0.3), 4 * MS),
    )
}

/// `SeekBar.<init>`: widget construction.
pub fn ui_init_seekbar() -> ApiSpec {
    ApiSpec::new(
        "android.widget.SeekBar.<init>",
        80,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(14 * MS, 0.3), Dist::new(7, 0.3), 4 * MS),
    )
}

/// `OrientationEventListener.enable`.
pub fn ui_enable_orientation() -> ApiSpec {
    ApiSpec::new(
        "android.view.OrientationEventListener.enable",
        112,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(9 * MS, 0.3), Dist::new(4, 0.4), 4 * MS),
    )
}

/// `AbsListView.onScroll` binding work while scrolling lists.
pub fn ui_scroll_list() -> ApiSpec {
    ApiSpec::new(
        "android.widget.AbsListView.onScroll",
        1410,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(35 * MS, 0.3), Dist::new(16, 0.3), 4 * MS),
    )
}

/// `BaseAdapter.notifyDataSetChanged`: rebinds visible rows.
pub fn ui_notify_dataset() -> ApiSpec {
    ApiSpec::new(
        "android.widget.BaseAdapter.notifyDataSetChanged",
        50,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(48 * MS, 0.35), Dist::new(22, 0.3), 4 * MS),
    )
}

/// `View.onMeasure` of a deep hierarchy.
pub fn ui_measure() -> ApiSpec {
    ApiSpec::new(
        "android.view.View.onMeasure",
        23180,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(62 * MS, 0.3), Dist::new(8, 0.3), 4 * MS),
    )
}

/// `ListView.layoutChildren`.
pub fn ui_layout_children() -> ApiSpec {
    ApiSpec::new(
        "android.widget.ListView.layoutChildren",
        1650,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(70 * MS, 0.3), Dist::new(30, 0.3), 4 * MS),
    )
}

/// Map tile layout/draw on the main thread (heavy legitimate UI work —
/// the CycleStreets-style false-positive source).
pub fn ui_draw_map_tiles() -> ApiSpec {
    ApiSpec::new(
        "org.osmdroid.views.MapView.dispatchDraw",
        990,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(185 * MS, 0.45), Dist::new(12, 0.3), 4 * MS),
    )
}

/// `Activity.setContentView`: full initial layout pass.
pub fn ui_set_content_view() -> ApiSpec {
    ApiSpec::new(
        "android.app.Activity.setContentView",
        2950,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(95 * MS, 0.35), Dist::new(40, 0.3), 4 * MS),
    )
}

/// `RecyclerView.onBindViewHolder` burst.
pub fn ui_bind_view_holder() -> ApiSpec {
    ApiSpec::new(
        "android.support.v7.widget.RecyclerView.onBindViewHolder",
        5410,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(26 * MS, 0.3), Dist::new(12, 0.3), 4 * MS),
    )
}

/// `FragmentTransaction.commit` + immediate layout.
pub fn ui_fragment_commit() -> ApiSpec {
    ApiSpec::new(
        "android.app.FragmentTransaction.commit",
        660,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(74 * MS, 0.35), Dist::new(32, 0.3), 4 * MS),
    )
}

/// `WebView` relayout of a complex page (legitimate but long UI work).
pub fn ui_webview_layout() -> ApiSpec {
    ApiSpec::new(
        "android.webkit.WebView.onLayout",
        2630,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(150 * MS, 0.4), Dist::new(12, 0.3), 4 * MS),
    )
}

/// Property animation start (posts many frames, little main CPU).
pub fn ui_start_animation() -> ApiSpec {
    ApiSpec::new(
        "android.animation.ObjectAnimator.start",
        1005,
        ApiKind::Ui,
        CostSpec::ui(Dist::new(18 * MS, 0.3), Dist::new(42, 0.3), 4 * MS),
    )
}

// ---- Well-known blocking APIs (in the offline database) ----------------

/// `Camera.open`: connects to the camera service; documented blocking
/// since 2011. Opening the camera performs dozens of binder round trips
/// to the camera HAL, each a voluntary context switch.
pub fn camera_open() -> ApiSpec {
    ApiSpec::new(
        "android.hardware.Camera.open",
        1290,
        ApiKind::Blocking {
            known_since: Some(2011),
        },
        CostSpec::io(Dist::new(4 * MS, 0.3), Dist::new(245 * MS, 0.25)).chunks(25),
    )
}

/// `Camera.setParameters`: HAL round trip.
pub fn camera_set_parameters() -> ApiSpec {
    ApiSpec::new(
        "android.hardware.Camera.setParameters",
        1810,
        ApiKind::Blocking {
            known_since: Some(2012),
        },
        CostSpec::io(Dist::new(3 * MS, 0.3), Dist::new(38 * MS, 0.3)).chunks(4),
    )
}

/// `MediaPlayer.prepare`: documented blocking since 2012.
pub fn mediaplayer_prepare() -> ApiSpec {
    ApiSpec::new(
        "android.media.MediaPlayer.prepare",
        1140,
        ApiKind::Blocking {
            known_since: Some(2012),
        },
        CostSpec::io(Dist::new(6 * MS, 0.3), Dist::new(185 * MS, 0.3)).chunks(10),
    )
}

/// `BitmapFactory.decodeFile`: decodes an image on the calling thread;
/// documented blocking since 2012.
pub fn bitmap_decode_file() -> ApiSpec {
    ApiSpec::new(
        "android.graphics.BitmapFactory.decodeFile",
        520,
        ApiKind::Blocking {
            known_since: Some(2012),
        },
        CostSpec::cpu(Dist::new(280 * MS, 0.3), ProfileKind::MemoryHeavy),
    )
}

/// `BluetoothServerSocket.accept`: documented blocking since 2012.
pub fn bluetooth_accept() -> ApiSpec {
    ApiSpec::new(
        "android.bluetooth.BluetoothServerSocket.accept",
        91,
        ApiKind::Blocking {
            known_since: Some(2012),
        },
        CostSpec::io(Dist::new(2 * MS, 0.3), Dist::new(300 * MS, 0.4)).chunks(6),
    )
}

/// `SQLiteDatabase.query` on the main thread.
pub fn sqlite_query() -> ApiSpec {
    ApiSpec::new(
        "android.database.sqlite.SQLiteDatabase.query",
        1380,
        ApiKind::Blocking {
            known_since: Some(2010),
        },
        CostSpec {
            cpu: Dist::new(85 * MS, 0.3),
            io: Dist::new(170 * MS, 0.3),
            profile: ProfileKind::IoStub,
            frames: Dist::ZERO,
            frame_ns: 0,
            manifest_p: 1.0,
            light_scale: 1.0,
            io_chunks: 8,
            network: false,
        },
    )
}

/// `SQLiteDatabase.insertWithOnConflict`.
pub fn sqlite_insert_with_on_conflict() -> ApiSpec {
    ApiSpec::new(
        "android.database.sqlite.SQLiteDatabase.insertWithOnConflict",
        1570,
        ApiKind::Blocking {
            known_since: Some(2010),
        },
        CostSpec {
            cpu: Dist::new(80 * MS, 0.3),
            io: Dist::new(200 * MS, 0.3),
            profile: ProfileKind::IoStub,
            frames: Dist::ZERO,
            frame_ns: 0,
            manifest_p: 1.0,
            light_scale: 1.0,
            io_chunks: 8,
            network: false,
        },
    )
}

/// `FileInputStream.read` of a sizable file.
pub fn file_read() -> ApiSpec {
    ApiSpec::new(
        "java.io.FileInputStream.read",
        255,
        ApiKind::Blocking {
            known_since: Some(2009),
        },
        CostSpec::io(Dist::new(9 * MS, 0.3), Dist::new(140 * MS, 0.35)).chunks(8),
    )
}

/// `FileOutputStream.write` of a sizable file.
pub fn file_write() -> ApiSpec {
    ApiSpec::new(
        "java.io.FileOutputStream.write",
        326,
        ApiKind::Blocking {
            known_since: Some(2009),
        },
        CostSpec::io(Dist::new(8 * MS, 0.3), Dist::new(165 * MS, 0.35)).chunks(8),
    )
}

/// `SharedPreferences.Editor.commit`: synchronous disk write.
pub fn prefs_commit() -> ApiSpec {
    ApiSpec::new(
        "android.content.SharedPreferences$Editor.commit",
        410,
        ApiKind::Blocking {
            known_since: Some(2012),
        },
        CostSpec::io(Dist::new(4 * MS, 0.3), Dist::new(120 * MS, 0.35)).chunks(5),
    )
}

/// `AssetManager.open` + read.
pub fn asset_open() -> ApiSpec {
    ApiSpec::new(
        "android.content.res.AssetManager.open",
        680,
        ApiKind::Blocking {
            known_since: Some(2011),
        },
        CostSpec::io(Dist::new(5 * MS, 0.3), Dist::new(110 * MS, 0.3)).chunks(5),
    )
}

// ---- Blocking APIs unknown to offline detectors at study time ----------

/// `HtmlCleaner.clean`: parses heavy HTML (the K9-mail #1007 root cause;
/// ~1.3 s for heavy pages).
pub fn html_clean() -> ApiSpec {
    ApiSpec::new(
        "org.htmlcleaner.HtmlCleaner.clean",
        25,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(1250 * MS, 0.25), ProfileKind::MemoryHeavy),
    )
}

/// `Gson.toJson`: serializes a large object graph (~1 s in SageMath #84).
pub fn gson_to_json() -> ApiSpec {
    ApiSpec::new(
        "com.google.gson.Gson.toJson",
        946,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(950 * MS, 0.3), ProfileKind::MemoryHeavy),
    )
}

/// Large JSON parse.
pub fn json_parse_large() -> ApiSpec {
    ApiSpec::new(
        "org.json.JSONObject.<init>",
        156,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(480 * MS, 0.3), ProfileKind::MemoryHeavy),
    )
}

/// RSS/Atom feed parse.
pub fn feed_parse() -> ApiSpec {
    ApiSpec::new(
        "org.xmlpull.v1.XmlPullParser.next",
        77,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(380 * MS, 0.3), ProfileKind::Compute),
    )
}

/// Geo lookup against a local index (disk-bound).
pub fn geocode_lookup() -> ApiSpec {
    ApiSpec::new(
        "com.cyclestreets.api.GeoPlaces.search",
        64,
        ApiKind::Blocking { known_since: None },
        CostSpec::io(Dist::new(10 * MS, 0.3), Dist::new(250 * MS, 0.3)).chunks(10),
    )
}

/// GPX track load from storage.
pub fn gpx_load() -> ApiSpec {
    ApiSpec::new(
        "com.cyclestreets.content.RouteData.load",
        118,
        ApiKind::Blocking { known_since: None },
        CostSpec::io(Dist::new(12 * MS, 0.3), Dist::new(290 * MS, 0.3)).chunks(9),
    )
}

/// Route geometry parse (disk-backed).
pub fn route_parse() -> ApiSpec {
    ApiSpec::new(
        "com.cyclestreets.api.Journey.loadFromXml",
        203,
        ApiKind::Blocking { known_since: None },
        CostSpec::io(Dist::new(14 * MS, 0.3), Dist::new(255 * MS, 0.3)).chunks(9),
    )
}

/// EXIF parse of photo metadata (memory-bound, short).
pub fn exif_parse() -> ApiSpec {
    ApiSpec::new(
        "it.sephiroth.android.exif.ExifInterface.readExif",
        88,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(135 * MS, 0.12), ProfileKind::MemoryHeavy),
    )
}

/// Thumbnail rescale (memory-bound, short).
pub fn thumbnail_resize() -> ApiSpec {
    ApiSpec::new(
        "com.nostra13.universalimageloader.core.ImageScaler.scale",
        141,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(130 * MS, 0.12), ProfileKind::MemoryHeavy),
    )
}

/// ICU transliteration of a visible text block (memory-bound, short).
pub fn icu_transliterate() -> ApiSpec {
    ApiSpec::new(
        "com.ibm.icu.text.Transliterator.transliterate",
        505,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(128 * MS, 0.12), ProfileKind::MemoryHeavy),
    )
}

/// Catastrophic-ish regex over a large message body (compute-bound).
pub fn regex_match_heavy() -> ApiSpec {
    ApiSpec::new(
        "java.util.regex.Matcher.find",
        1199,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(420 * MS, 0.3), ProfileKind::Compute),
    )
}

/// Markdown/emoji render of a long conversation (compute-bound).
pub fn markdown_render() -> ApiSpec {
    ApiSpec::new(
        "com.vdurmont.emoji.EmojiParser.parseToUnicode",
        233,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(330 * MS, 0.3), ProfileKind::Compute),
    )
}

/// Certificate chain verification (compute-bound).
pub fn cert_verify() -> ApiSpec {
    ApiSpec::new(
        "org.spongycastle.cert.X509CertificateHolder.isSignatureValid",
        167,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(290 * MS, 0.3), ProfileKind::Compute),
    )
}

/// Zip entry inflate of a content pack.
pub fn zip_inflate() -> ApiSpec {
    ApiSpec::new(
        "java.util.zip.ZipInputStream.read",
        310,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(310 * MS, 0.3), ProfileKind::MemoryHeavy),
    )
}

/// Video metadata probe (memory+compute).
pub fn video_meta_parse() -> ApiSpec {
    ApiSpec::new(
        "com.coremedia.iso.IsoFile.parse",
        402,
        ApiKind::Blocking { known_since: None },
        CostSpec::cpu(Dist::new(580 * MS, 0.3), ProfileKind::MemoryHeavy),
    )
}

/// Repository status scan over many small files (disk-bound).
pub fn repo_stat_scan() -> ApiSpec {
    ApiSpec::new(
        "org.eclipse.jgit.lib.IndexDiff.diff",
        289,
        ApiKind::Blocking { known_since: None },
        CostSpec::io(Dist::new(18 * MS, 0.3), Dist::new(265 * MS, 0.3)).chunks(12),
    )
}

/// Report fetch from a local store (disk-bound).
pub fn report_fetch() -> ApiSpec {
    ApiSpec::new(
        "com.qulix.merchant.ReportStore.fetchAll",
        73,
        ApiKind::Blocking { known_since: None },
        CostSpec::io(Dist::new(15 * MS, 0.3), Dist::new(245 * MS, 0.3)).chunks(9),
    )
}

/// AndStatus `MyHtml.transform`: sanitizes post HTML via temp files
/// (disk-bound; the Figure 2(b) "transform" entry).
pub fn html_transform() -> ApiSpec {
    ApiSpec::new(
        "org.andstatus.app.util.MyHtml.transform",
        129,
        ApiKind::Blocking { known_since: None },
        CostSpec::io(Dist::new(12 * MS, 0.3), Dist::new(210 * MS, 0.3)).chunks(8),
    )
}

/// `HttpURLConnection.connect` + read on the main thread: the classic
/// network-on-main hang. Well known and excluded from the study corpus
/// (footnote 2: modern builds reject it), but supported so the
/// network-monitoring extension can be exercised.
pub fn http_fetch() -> ApiSpec {
    ApiSpec::new(
        "java.net.HttpURLConnection.getInputStream",
        1430,
        ApiKind::Blocking {
            known_since: Some(2009),
        },
        CostSpec::io(Dist::new(8 * MS, 0.3), Dist::new(350 * MS, 0.4))
            .chunks(6)
            .network(),
    )
}

// ---- Wrappers ------------------------------------------------------------

/// `cupboard.get`: open-source ORM wrapper that hides a database call
/// (SageMath #84).
pub fn cupboard_get() -> ApiSpec {
    ApiSpec::new(
        "nl.qbusict.cupboard.Cupboard.get",
        212,
        ApiKind::Wrapper,
        CostSpec::none(),
    )
}

/// A generic open-source library wrapper.
pub fn wrapper(symbol: &str, line: u32) -> ApiSpec {
    ApiSpec::new(symbol, line, ApiKind::Wrapper, CostSpec::none())
}

/// A closed-source library wrapper (invisible to offline scanners).
pub fn closed_wrapper(symbol: &str, line: u32) -> ApiSpec {
    ApiSpec::new(symbol, line, ApiKind::Wrapper, CostSpec::none()).closed()
}

/// A self-developed lengthy operation (heavy loop in app code).
pub fn self_developed(symbol: &str, line: u32, cpu_ms: u64, profile: ProfileKind) -> ApiSpec {
    ApiSpec::new(
        symbol,
        line,
        ApiKind::SelfDeveloped,
        CostSpec::cpu(Dist::new(cpu_ms * MS, 0.3), profile),
    )
}

/// All UI APIs in the catalog (the training set needs ≥ 11).
pub fn all_ui_apis() -> Vec<ApiSpec> {
    vec![
        ui_set_text(),
        ui_inflate(),
        ui_init_seekbar(),
        ui_enable_orientation(),
        ui_scroll_list(),
        ui_notify_dataset(),
        ui_measure(),
        ui_layout_children(),
        ui_draw_map_tiles(),
        ui_set_content_view(),
        ui_bind_view_holder(),
        ui_fragment_commit(),
        ui_webview_layout(),
        ui_start_animation(),
    ]
}

/// All well-known blocking APIs (the offline database contents).
pub fn all_known_blocking_apis() -> Vec<ApiSpec> {
    vec![
        camera_open(),
        camera_set_parameters(),
        mediaplayer_prepare(),
        bitmap_decode_file(),
        bluetooth_accept(),
        sqlite_query(),
        sqlite_insert_with_on_conflict(),
        file_read(),
        file_write(),
        prefs_commit(),
        asset_open(),
    ]
}

/// All catalog blocking APIs that offline detectors do not know.
pub fn all_unknown_blocking_apis() -> Vec<ApiSpec> {
    vec![
        html_clean(),
        gson_to_json(),
        json_parse_large(),
        feed_parse(),
        geocode_lookup(),
        gpx_load(),
        route_parse(),
        exif_parse(),
        thumbnail_resize(),
        icu_transliterate(),
        regex_match_heavy(),
        markdown_render(),
        cert_verify(),
        zip_inflate(),
        video_meta_parse(),
        repo_stat_scan(),
        report_fetch(),
        html_transform(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sizes() {
        assert!(all_ui_apis().len() >= 11, "training needs ≥ 11 UI APIs");
        assert!(all_known_blocking_apis().len() >= 10);
        assert!(all_unknown_blocking_apis().len() >= 15);
    }

    #[test]
    fn ui_apis_are_ui() {
        for api in all_ui_apis() {
            assert!(api.is_ui(), "{} misclassified", api.symbol);
            assert!(api.cost.frames.base > 0, "{} posts no frames", api.symbol);
        }
    }

    #[test]
    fn known_apis_have_years_unknown_have_none() {
        for api in all_known_blocking_apis() {
            assert!(
                api.known_blocking_in(2017),
                "{} should be in the 2017 DB",
                api.symbol
            );
        }
        for api in all_unknown_blocking_apis() {
            assert!(
                !api.known_blocking_in(2017),
                "{} should NOT be in the 2017 DB",
                api.symbol
            );
        }
    }

    #[test]
    fn symbols_are_unique_across_catalog() {
        let mut names: Vec<String> = all_ui_apis()
            .into_iter()
            .chain(all_known_blocking_apis())
            .chain(all_unknown_blocking_apis())
            .map(|a| a.symbol)
            .collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn api_set_assigns_dense_ids() {
        let mut set = ApiSet::new();
        let a = set.add(ui_set_text());
        let b = set.add(camera_open());
        assert_eq!(a, ApiId(0));
        assert_eq!(b, ApiId(1));
        let v = set.into_vec();
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].symbol, "android.hardware.Camera.open");
    }

    #[test]
    fn camera_open_timeline_matches_paper() {
        // Available since 2008, marked blocking only after 2011: an
        // offline scanner from 2010 misses it.
        let api = camera_open();
        assert!(!api.known_blocking_in(2010));
        assert!(api.known_blocking_in(2011));
    }
}
