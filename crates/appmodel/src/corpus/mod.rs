//! The study corpus: Table 1 motivation apps, Table 5 study apps, and
//! generated healthy apps — 114 in total, like the paper's field study.

pub mod async_hangs;
pub mod builder;
pub mod shared_wrappers;
pub mod synth;
pub mod table1;
pub mod table5;
pub mod vendored;

pub use builder::{AppBuilder, UiPack};
pub use table5::is_offline_missed;

use crate::app::App;

/// Number of apps in the full study (paper Section 4.2).
pub const FULL_STUDY_SIZE: usize = 114;

/// The eight Table 1 motivation apps (known bugs, timeout study).
pub fn table1_apps() -> Vec<App> {
    table1::apps()
}

/// The sixteen Table 5 study apps (34 bugs, 23 missed offline).
pub fn table5_apps() -> Vec<App> {
    table5::apps()
}

/// The closed-source vendor-SDK apps (outside the pinned study counts;
/// used by the static↔runtime differential).
pub fn vendored_apps() -> Vec<App> {
    vendored::apps()
}

/// The ground-truthed async hang apps (outside the pinned study counts;
/// used by the async differential and the fleet async suites).
pub fn async_hang_apps() -> Vec<App> {
    async_hangs::apps()
}

/// The shared-wrapper false-positive apps (outside the pinned study
/// counts; used by the sast precision differential).
pub fn shared_wrapper_apps() -> Vec<App> {
    shared_wrappers::apps()
}

/// The full 114-app study corpus: Table 1 + Table 5 + generated healthy
/// apps.
pub fn full_corpus(seed: u64) -> Vec<App> {
    let mut apps = table1_apps();
    apps.extend(table5_apps());
    let missing = FULL_STUDY_SIZE - apps.len();
    apps.extend(synth::apps(missing, seed));
    apps
}

/// The corpus the static↔runtime differential runs over: every buggy
/// study app plus the vendored-SDK apps, so all three offline failure
/// modes (unknown-API, closed-source, self-developed) are populated —
/// and the shared-wrapper apps, so precision (not just recall) has
/// ground truth to score against.
pub fn differential_corpus() -> Vec<App> {
    let mut apps = table1_apps();
    apps.extend(table5_apps());
    apps.extend(vendored_apps());
    apps.extend(async_hang_apps());
    apps.extend(shared_wrapper_apps());
    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_corpus_counts() {
        let corpus = full_corpus(42);
        assert_eq!(corpus.len(), FULL_STUDY_SIZE);
        let buggy = corpus.iter().filter(|a| !a.bugs.is_empty()).count();
        // 8 Table-1 apps + 16 Table-5 apps show soft hang problems.
        assert_eq!(buggy, 24);
        let total_bugs: usize = corpus.iter().map(|a| a.bugs.len()).sum();
        // 19 known (Table 1) + 34 study (Table 5).
        assert_eq!(total_bugs, 53);
    }

    #[test]
    fn corpus_names_are_unique() {
        let corpus = full_corpus(42);
        let mut names: Vec<&str> = corpus.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FULL_STUDY_SIZE);
    }
}
