//! The sixteen study apps of Table 5 with their 34 soft hang bugs.
//!
//! 23 of the bugs are rooted in APIs *unknown* to offline detectors (or
//! in self-developed operations) — these populate Table 6 and the
//! validation set; the remaining 11 use well-known blocking APIs,
//! including three reached through library wrappers (OwnTracks, SageMath,
//! Lens-Launcher).
//!
//! Each unknown bug is shaped to its Table 6 counter signature:
//! * I/O-bound bugs (chunked waits, little CPU) → context-switches only;
//! * compute-bound bugs (long CPU, few faults) → context-switches +
//!   task-clock;
//! * memory-bound long bugs → all three counters;
//! * short memory-bound bugs inside render-heavy actions → page-faults
//!   only (the render thread out-switches the main thread).

use crate::action::Call;
use crate::api::ApiId;
use crate::app::App;
use crate::profile::ProfileKind;
use crate::registry as reg;

use super::builder::{AppBuilder, UiPack};

/// A light action (sub-100 ms).
fn light(b: &mut AppBuilder, ui: &UiPack, name: &str, handler: &str, weight: f64) {
    b.action(
        name,
        weight,
        handler,
        30,
        vec![Call::direct(ui.set_text), Call::direct(ui.bind_holder)],
    );
}

/// A render-dominant UI action > 100 ms on the main thread (S-Checker
/// prunes it via negative counter differences).
fn heavy_ui(b: &mut AppBuilder, ui: &UiPack, name: &str, handler: &str, variant: usize) {
    let calls = match variant % 3 {
        0 => vec![Call::direct(ui.inflate), Call::direct(ui.layout_children)],
        1 => vec![
            Call::direct(ui.notify_dataset),
            Call::direct(ui.fragment_commit),
        ],
        _ => vec![Call::direct(ui.content_view), Call::direct(ui.scroll_list)],
    };
    b.action(name, 1.0, handler, 70 + variant as u32, calls);
}

/// A main-thread-heavy UI action (map tiles / WebView): trips S-Checker
/// symptoms and must be pruned by the Diagnoser's stack analysis.
fn tricky_ui(b: &mut AppBuilder, ui: &UiPack, name: &str, handler: &str, map: bool) {
    let calls = if map {
        vec![Call::direct(ui.map_tiles), Call::direct(ui.set_text)]
    } else {
        vec![Call::direct(ui.webview_layout), Call::direct(ui.measure)]
    };
    b.action(name, 1.0, handler, 95, calls);
}

/// A bug action: one light UI call plus the buggy call.
#[allow(clippy::too_many_arguments)]
fn bug_action(
    b: &mut AppBuilder,
    ui: &UiPack,
    name: &str,
    handler: &str,
    line: u32,
    call: Call,
    api: ApiId,
    bug_id: &str,
    issue: u32,
    desc: &str,
) {
    let a = b.action(
        name,
        1.0,
        handler,
        line,
        vec![Call::direct(ui.set_text), call.bug(bug_id)],
    );
    b.bug(bug_id, issue, api, a, desc);
}

/// A page-fault-signature bug action: a short memory-heavy bug inside a
/// render-dominant action.
#[allow(clippy::too_many_arguments)]
fn pf_bug_action(
    b: &mut AppBuilder,
    ui: &UiPack,
    name: &str,
    handler: &str,
    line: u32,
    api: ApiId,
    bug_id: &str,
    issue: u32,
    desc: &str,
) {
    let a = b.action(
        name,
        1.0,
        handler,
        line,
        vec![
            Call::direct(ui.notify_dataset),
            Call::direct(ui.animation),
            Call::direct(ui.scroll_list),
            Call::direct(api).bug(bug_id),
        ],
    );
    b.bug(bug_id, issue, api, a, desc);
}

/// AndStatus: social timeline. Bugs: `BitmapFactory.decodeFile` on
/// timeline scroll (known; ~600 ms, issue 303), `MyHtml.transform`
/// (unknown, I/O; Figure 2(b)), avatar rescale (unknown, page-fault
/// signature).
pub fn andstatus() -> App {
    let mut b = AppBuilder::new("AndStatus", "org.andstatus.app", "Social", 1_000, "49ef41c");
    let ui = b.ui_pack();
    let decode = b.api_scaled(reg::bitmap_decode_file(), 2.0);
    // transform only hangs for posts with heavy HTML (~3 in 4 opens):
    // the occasional-manifestation case of Figure 3's Path B.
    let mut transform_spec = reg::html_transform();
    transform_spec.cost = transform_spec.cost.occasional(0.75, 0.08);
    let transform = b.api(transform_spec);
    let resize = b.api_scaled(reg::thumbnail_resize(), 1.1);
    let scroll = b.action(
        "scroll timeline",
        2.0,
        "TimelineActivity.onScroll",
        214,
        vec![
            Call::direct(ui.scroll_list),
            Call::direct(decode).bug("andstatus-303-decode"),
        ],
    );
    b.bug(
        "andstatus-303-decode",
        303,
        decode,
        scroll,
        "attached image decoded on the main thread while scrolling (~600 ms)",
    );
    bug_action(
        &mut b,
        &ui,
        "open conversation",
        "ConversationActivity.onOpen",
        129,
        Call::direct(transform),
        transform,
        "andstatus-303-transform",
        303,
        "MyHtml.transform sanitizes post HTML through temp files on the main thread",
    );
    pf_bug_action(
        &mut b,
        &ui,
        "view attachments",
        "AttachmentsActivity.onShow",
        88,
        resize,
        "andstatus-303-resize",
        303,
        "avatar grid rescaled inline during a render-heavy refresh",
    );
    heavy_ui(&mut b, &ui, "open timeline", "TimelineActivity.onResume", 0);
    heavy_ui(&mut b, &ui, "switch account", "AccountActivity.onSelect", 1);
    light(&mut b, &ui, "star post", "TimelineActivity.onStar", 3.0);
    b.build()
}

/// DashClock: widget host. One known bug (synchronous preference flush).
pub fn dashclock() -> App {
    let mut b = AppBuilder::new(
        "DashClock",
        "net.nurik.roman.dashclock",
        "Personalization",
        1_000_000,
        "7e248f7",
    );
    let ui = b.ui_pack();
    // The flush only hangs when many extensions changed (occasional).
    let mut commit_spec = reg::prefs_commit();
    commit_spec.cost = commit_spec.cost.occasional(0.8, 0.1);
    let commit = b.api_scaled(commit_spec, 1.3);
    bug_action(
        &mut b,
        &ui,
        "save widget config",
        "ConfigurationActivity.onSave",
        152,
        Call::direct(commit),
        commit,
        "dashclock-874-commit",
        874,
        "widget configuration committed synchronously",
    );
    heavy_ui(
        &mut b,
        &ui,
        "open configuration",
        "ConfigurationActivity.onCreate",
        0,
    );
    heavy_ui(
        &mut b,
        &ui,
        "reorder extensions",
        "ConfigurationActivity.onReorder",
        2,
    );
    light(
        &mut b,
        &ui,
        "toggle extension",
        "ConfigurationActivity.onToggle",
        3.0,
    );
    b.build()
}

/// CycleStreets: cycling maps. Three unknown I/O bugs (context-switch
/// signature) plus one known database bug; heavy map drawing makes it
/// the false-positive-richest app (Figure 8).
pub fn cyclestreets() -> App {
    let mut b = AppBuilder::new(
        "CycleStreets",
        "net.cyclestreets",
        "Travel & Local",
        50_000,
        "2d8d550",
    );
    let ui = b.ui_pack();
    let geocode = b.api(reg::geocode_lookup());
    let gpx = b.api(reg::gpx_load());
    let route = b.api(reg::route_parse());
    let query = b.api_scaled(reg::sqlite_query(), 1.1);
    bug_action(
        &mut b,
        &ui,
        "search place",
        "PlaceSearchActivity.onSearch",
        64,
        Call::direct(geocode),
        geocode,
        "cyclestreets-117-geocode",
        117,
        "local geocoder index searched on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "load saved track",
        "TrackActivity.onLoad",
        118,
        Call::direct(gpx),
        gpx,
        "cyclestreets-117-gpx",
        117,
        "GPX track loaded from storage on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "open route",
        "RouteActivity.onOpen",
        203,
        Call::direct(route),
        route,
        "cyclestreets-117-route",
        117,
        "route geometry parsed from disk on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "open itinerary",
        "ItineraryActivity.onResume",
        87,
        Call::direct(query),
        query,
        "cyclestreets-117-query",
        117,
        "itinerary rows queried on the main thread",
    );
    tricky_ui(&mut b, &ui, "pan map", "MapActivity.onPan", true);
    tricky_ui(&mut b, &ui, "zoom map", "MapActivity.onZoom", true);
    heavy_ui(
        &mut b,
        &ui,
        "open elevation profile",
        "ElevationActivity.onCreate",
        1,
    );
    light(&mut b, &ui, "drop pin", "MapActivity.onLongPress", 2.5);
    b.build()
}

/// K9-mail: email client. Both bugs unknown and memory-bound
/// (all-three-counters signature): `HtmlCleaner.clean` (issue 1007,
/// ~1.3 s) and a large stored-message JSON parse.
pub fn k9mail() -> App {
    let mut b = AppBuilder::new(
        "K9-mail",
        "com.fsck.k9",
        "Communication",
        5_000_000,
        "ac131a2",
    );
    let ui = b.ui_pack();
    let clean = b.api(reg::html_clean());
    let parse = b.api(reg::json_parse_large());
    let sanitizer = b.api(reg::wrapper(
        "com.fsck.k9.helper.HtmlSanitizer.sanitize",
        25,
    ));
    let a = b.action(
        "open email",
        1.5,
        "MessageViewFragment.onOpenMessage",
        371,
        vec![
            Call::direct(ui.set_text),
            Call::via(vec![sanitizer], clean).bug("k9mail-1007-clean"),
        ],
    );
    b.bug(
        "k9mail-1007-clean",
        1007,
        clean,
        a,
        "HtmlCleaner.clean parses heavy HTML on the main thread (~1.3 s)",
    );
    bug_action(
        &mut b,
        &ui,
        "restore drafts",
        "DraftsActivity.onRestore",
        233,
        Call::direct(parse),
        parse,
        "k9mail-1007-parse",
        1007,
        "stored drafts JSON parsed on the main thread",
    );
    heavy_ui(
        &mut b,
        &ui,
        "open folders",
        "FolderListActivity.onResume",
        0,
    );
    // The inbox renders message previews through a WebView: main-thread
    // heavy, so it trips the S-Checker and must be pruned by the
    // Diagnoser — the Figure 7 storyline.
    tricky_ui(
        &mut b,
        &ui,
        "open inbox",
        "MessageListActivity.onResume",
        false,
    );
    heavy_ui(
        &mut b,
        &ui,
        "open account setup",
        "AccountSetupActivity.onCreate",
        2,
    );
    light(
        &mut b,
        &ui,
        "select message",
        "MessageListActivity.onSelect",
        3.0,
    );
    b.build()
}

/// Omni-Notes: note taking. Three unknown short memory-bound bugs inside
/// render-heavy refreshes — the page-fault-only signature of Table 6.
pub fn omninotes() -> App {
    let mut b = AppBuilder::new(
        "Omni-Notes",
        "it.feio.android.omninotes",
        "Productivity",
        50_000,
        "8ffde3a",
    );
    let ui = b.ui_pack();
    let exif = b.api_scaled(reg::exif_parse(), 1.05);
    let resize = b.api_scaled(reg::thumbnail_resize(), 1.1);
    let icu = b.api_scaled(reg::icu_transliterate(), 1.1);
    pf_bug_action(
        &mut b,
        &ui,
        "open note with photos",
        "DetailFragment.onAttachmentsShown",
        311,
        exif,
        "omninotes-253-exif",
        253,
        "EXIF metadata of attachments parsed inline during list refresh",
    );
    pf_bug_action(
        &mut b,
        &ui,
        "refresh note grid",
        "ListFragment.onRefresh",
        178,
        resize,
        "omninotes-253-resize",
        253,
        "note thumbnails rescaled inline during grid refresh",
    );
    pf_bug_action(
        &mut b,
        &ui,
        "search notes",
        "ListFragment.onSearch",
        402,
        icu,
        "omninotes-253-icu",
        253,
        "search results transliterated inline while the list animates",
    );
    heavy_ui(&mut b, &ui, "open editor", "DetailFragment.onCreate", 0);
    light(
        &mut b,
        &ui,
        "toggle checklist item",
        "DetailFragment.onCheck",
        3.0,
    );
    b.build()
}

/// OwnTracks: location diary. One known bug reached through an
/// open-source wrapper (offline tools that scan the library still see it).
pub fn owntracks() -> App {
    let mut b = AppBuilder::new(
        "OwnTracks",
        "org.owntracks.android",
        "Travel & Local",
        1_000,
        "1514d4a",
    );
    let ui = b.ui_pack();
    let commit = b.api_scaled(reg::prefs_commit(), 1.4);
    let wrapper = b.api(reg::wrapper(
        "org.owntracks.android.support.Preferences.exportToFile",
        88,
    ));
    let a = b.action(
        "export config",
        1.0,
        "PreferencesActivity.onExport",
        141,
        vec![
            Call::direct(ui.set_text),
            Call::via(vec![wrapper], commit).bug("owntracks-303-commit"),
        ],
    );
    b.bug(
        "owntracks-303-commit",
        303,
        commit,
        a,
        "preference export flushes synchronously, nested in a helper library",
    );
    heavy_ui(&mut b, &ui, "open map view", "MapActivity.onResume", 2);
    heavy_ui(&mut b, &ui, "open regions", "RegionsActivity.onCreate", 1);
    light(
        &mut b,
        &ui,
        "publish location",
        "MapActivity.onPublish",
        3.0,
    );
    b.build()
}

/// QKSMS: SMS client. Three unknown compute-bound bugs (context-switch +
/// task-clock signature), one of them a self-developed search indexer.
pub fn qksms() -> App {
    let mut b = AppBuilder::new(
        "QKSMS",
        "com.moez.QKSMS",
        "Communication",
        100_000,
        "2a80947",
    );
    let ui = b.ui_pack();
    let regex = b.api(reg::regex_match_heavy());
    let emoji = b.api(reg::markdown_render());
    let indexer = b.api(reg::self_developed(
        "com.moez.QKSMS.util.SearchIndexer.buildIndex",
        57,
        380,
        ProfileKind::Compute,
    ));
    bug_action(
        &mut b,
        &ui,
        "highlight links",
        "ConversationActivity.onShowMessage",
        389,
        Call::direct(regex),
        regex,
        "qksms-382-regex",
        382,
        "link-detection regex runs over the full conversation on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "render emoji",
        "ConversationActivity.onRenderBody",
        412,
        Call::direct(emoji),
        emoji,
        "qksms-382-emoji",
        382,
        "emoji parse of a long conversation on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "search messages",
        "SearchActivity.onQuery",
        57,
        Call::direct(indexer),
        indexer,
        "qksms-382-indexer",
        382,
        "self-developed search index rebuilt on the main thread (heavy loop)",
    );
    heavy_ui(
        &mut b,
        &ui,
        "open conversation list",
        "MainActivity.onResume",
        1,
    );
    heavy_ui(&mut b, &ui, "open settings", "SettingsActivity.onCreate", 2);
    light(&mut b, &ui, "send message", "ComposeActivity.onSend", 3.0);
    b.build()
}

/// StickerCamera: photo editor. Three known camera/bitmap/file bugs.
pub fn stickercamera() -> App {
    let mut b = AppBuilder::new(
        "StickerCamera",
        "com.github.skykai.stickercamera",
        "Photography",
        5_000,
        "6fc41b1",
    );
    let ui = b.ui_pack();
    let open = b.api(reg::camera_open());
    let decode = b.api(reg::bitmap_decode_file());
    let write = b.api_scaled(reg::file_write(), 1.3);
    bug_action(
        &mut b,
        &ui,
        "open camera",
        "CameraActivity.onResume",
        122,
        Call::direct(open),
        open,
        "stickercamera-29-open",
        29,
        "camera.open on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "edit photo",
        "EditActivity.onLoad",
        215,
        Call::direct(decode),
        decode,
        "stickercamera-29-decode",
        29,
        "photo decoded on the main thread before editing",
    );
    bug_action(
        &mut b,
        &ui,
        "save sticker",
        "EditActivity.onSave",
        388,
        Call::direct(write),
        write,
        "stickercamera-29-write",
        29,
        "edited image written synchronously",
    );
    heavy_ui(&mut b, &ui, "open filters", "EditActivity.onFilters", 0);
    light(&mut b, &ui, "pick sticker", "EditActivity.onSticker", 3.0);
    b.build()
}

/// AntennaPod: podcast player. Two unknown compute-bound bugs plus one
/// known database bug.
pub fn antennapod() -> App {
    let mut b = AppBuilder::new(
        "AntennaPod",
        "de.danoeh.antennapod",
        "Media & Video",
        100_000,
        "c3808e2",
    );
    let ui = b.ui_pack();
    let feed = b.api(reg::feed_parse());
    let rebuild = b.api(reg::self_developed(
        "de.danoeh.antennapod.core.util.QueueRebuilder.rebuild",
        204,
        320,
        ProfileKind::Compute,
    ));
    let insert = b.api_scaled(reg::sqlite_insert_with_on_conflict(), 1.0);
    bug_action(
        &mut b,
        &ui,
        "refresh feed",
        "FeedItemlistFragment.onRefresh",
        199,
        Call::direct(feed),
        feed,
        "antennapod-1921-feed",
        1921,
        "feed XML parsed on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "reorder queue",
        "QueueFragment.onReorder",
        204,
        Call::direct(rebuild),
        rebuild,
        "antennapod-1921-queue",
        1921,
        "self-developed queue rebuild loop on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "mark episode played",
        "ItemFragment.onMarkPlayed",
        267,
        Call::direct(insert),
        insert,
        "antennapod-1921-insert",
        1921,
        "playback state upserted on the main thread",
    );
    heavy_ui(
        &mut b,
        &ui,
        "open subscriptions",
        "MainActivity.onResume",
        1,
    );
    heavy_ui(&mut b, &ui, "open episode", "ItemFragment.onCreate", 2);
    light(
        &mut b,
        &ui,
        "play episode",
        "AudioPlayerActivity.onPlay",
        3.0,
    );
    b.build()
}

/// Merchant: point-of-sale. One unknown I/O bug (context-switch
/// signature).
pub fn merchant() -> App {
    let mut b = AppBuilder::new(
        "Merchant",
        "com.qulix.merchant",
        "Business",
        10_000,
        "c87d69a",
    );
    let ui = b.ui_pack();
    let fetch = b.api(reg::report_fetch());
    bug_action(
        &mut b,
        &ui,
        "open sales report",
        "ReportActivity.onOpen",
        73,
        Call::direct(fetch),
        fetch,
        "merchant-17-fetch",
        17,
        "report rows fetched from the local store on the main thread",
    );
    heavy_ui(&mut b, &ui, "open catalog", "CatalogActivity.onResume", 0);
    heavy_ui(&mut b, &ui, "open checkout", "CheckoutActivity.onCreate", 1);
    light(&mut b, &ui, "add item", "CatalogActivity.onAdd", 3.0);
    b.build()
}

/// UOITDC Booking: campus room booking. Two unknown memory-bound bugs
/// (all-three-counters signature).
pub fn uoitdc() -> App {
    let mut b = AppBuilder::new(
        "UOITDC Booking",
        "ca.uoit.tdcbooking",
        "Tools",
        100,
        "5d18c26",
    );
    let ui = b.ui_pack();
    let parse = b.api(reg::json_parse_large());
    let unpack = b.api(reg::zip_inflate());
    bug_action(
        &mut b,
        &ui,
        "load schedule",
        "ScheduleActivity.onLoad",
        91,
        Call::direct(parse),
        parse,
        "uoitdc-3-parse",
        3,
        "cached schedule JSON parsed on the main thread",
    );
    bug_action(
        &mut b,
        &ui,
        "unpack timetable",
        "TimetableActivity.onUnpack",
        143,
        Call::direct(unpack),
        unpack,
        "uoitdc-3-unpack",
        3,
        "timetable bundle inflated on the main thread",
    );
    heavy_ui(
        &mut b,
        &ui,
        "open booking form",
        "BookingActivity.onCreate",
        2,
    );
    light(&mut b, &ui, "select room", "BookingActivity.onSelect", 3.0);
    b.build()
}

/// SageMath: math client. Two unknown `Gson.toJson` bugs (issue 84) plus
/// one known database call hidden behind the open-source `cupboard` ORM.
pub fn sagemath() -> App {
    let mut b = AppBuilder::new(
        "Sage Math",
        "org.sagemath.droid",
        "Education",
        10_000,
        "3198106",
    );
    let ui = b.ui_pack();
    let to_json_save = b.api(reg::gson_to_json());
    let to_json_share = b.api_scaled(reg::gson_to_json(), 0.9);
    let insert = b.api(reg::sqlite_insert_with_on_conflict());
    let cupboard = b.api(reg::cupboard_get());
    bug_action(
        &mut b,
        &ui,
        "save worksheet",
        "WorksheetActivity.onSave",
        946,
        Call::direct(to_json_save),
        to_json_save,
        "sagemath-84-tojson-save",
        84,
        "worksheet serialized with Gson.toJson on the main thread (~1 s)",
    );
    bug_action(
        &mut b,
        &ui,
        "share cell output",
        "CellActivity.onShare",
        512,
        Call::direct(to_json_share),
        to_json_share,
        "sagemath-84-tojson-share",
        84,
        "cell output serialized with Gson.toJson on the main thread",
    );
    let a = b.action(
        "open worksheet list",
        1.2,
        "WorksheetListActivity.onResume",
        212,
        vec![
            Call::direct(ui.notify_dataset),
            Call::via(vec![cupboard], insert).bug("sagemath-84-cupboard"),
        ],
    );
    b.bug(
        "sagemath-84-cupboard",
        84,
        insert,
        a,
        "cupboard.get hides insertWithOnConflict on the main thread",
    );
    heavy_ui(
        &mut b,
        &ui,
        "render worksheet",
        "WorksheetActivity.onRender",
        0,
    );
    light(&mut b, &ui, "run cell", "CellActivity.onRun", 3.0);
    b.build()
}

/// RadioDroid: internet radio. One unknown page-fault-signature bug plus
/// one known file read.
pub fn radiodroid() -> App {
    let mut b = AppBuilder::new(
        "RadioDroid",
        "net.programmierecke.radiodroid",
        "Music & Audio",
        10,
        "0108e8b",
    );
    let ui = b.ui_pack();
    let icu = b.api_scaled(reg::icu_transliterate(), 1.1);
    let read = b.api_scaled(reg::file_read(), 1.1);
    pf_bug_action(
        &mut b,
        &ui,
        "browse stations",
        "StationsFragment.onRefresh",
        156,
        icu,
        "radiodroid-29-icu",
        29,
        "station names transliterated inline during an animated refresh",
    );
    bug_action(
        &mut b,
        &ui,
        "load playlist",
        "PlaylistActivity.onLoad",
        88,
        Call::direct(read),
        read,
        "radiodroid-29-read",
        29,
        "m3u playlist read on the main thread",
    );
    heavy_ui(&mut b, &ui, "open player", "PlayerActivity.onCreate", 1);
    light(
        &mut b,
        &ui,
        "toggle favourite",
        "StationsFragment.onStar",
        3.0,
    );
    b.build()
}

/// Git@OSC: git client. One unknown I/O bug (context-switch signature).
pub fn gitosc() -> App {
    let mut b = AppBuilder::new(
        "Git@OSC",
        "net.oschina.gitapp",
        "Tools",
        10_000,
        "bb80e0a95",
    );
    let ui = b.ui_pack();
    let diff = b.api(reg::repo_stat_scan());
    bug_action(
        &mut b,
        &ui,
        "open repository status",
        "RepoStatusActivity.onOpen",
        289,
        Call::direct(diff),
        diff,
        "gitosc-89-diff",
        89,
        "working-tree status scanned over many files on the main thread",
    );
    heavy_ui(&mut b, &ui, "open commits", "CommitsActivity.onResume", 0);
    heavy_ui(&mut b, &ui, "open file tree", "FilesActivity.onCreate", 2);
    light(&mut b, &ui, "star repo", "RepoActivity.onStar", 3.0);
    b.build()
}

/// Lens-Launcher: launcher. One known bug nested in an open-source icon
/// cache helper.
pub fn lenslauncher() -> App {
    let mut b = AppBuilder::new(
        "Lens-Launcher",
        "nickrout.lenslauncher",
        "Personalization",
        100_000,
        "e41e6c6",
    );
    let ui = b.ui_pack();
    let decode = b.api(reg::bitmap_decode_file());
    let cache = b.api(reg::wrapper(
        "nickrout.lenslauncher.util.IconCache.load",
        44,
    ));
    let a = b.action(
        "open app drawer",
        1.5,
        "HomeActivity.onDrawerOpen",
        97,
        vec![
            Call::direct(ui.animation),
            Call::via(vec![cache], decode).bug("lenslauncher-15-icons"),
        ],
    );
    b.bug(
        "lenslauncher-15-icons",
        15,
        decode,
        a,
        "icon bitmaps decoded on the main thread inside IconCache.load",
    );
    heavy_ui(&mut b, &ui, "open settings", "SettingsActivity.onCreate", 1);
    light(&mut b, &ui, "launch app", "HomeActivity.onLaunch", 4.0);
    b.build()
}

/// SkyTube: YouTube client. One unknown memory-bound bug
/// (all-three-counters signature).
pub fn skytube() -> App {
    let mut b = AppBuilder::new(
        "SkyTube",
        "free.rm.skytube",
        "Video Players",
        5_000,
        "3da671c",
    );
    let ui = b.ui_pack();
    let probe = b.api(reg::video_meta_parse());
    bug_action(
        &mut b,
        &ui,
        "open downloaded video",
        "DownloadedVideosFragment.onOpen",
        402,
        Call::direct(probe),
        probe,
        "skytube-88-probe",
        88,
        "MP4 container parsed on the main thread before playback",
    );
    heavy_ui(&mut b, &ui, "browse channel", "ChannelFragment.onResume", 0);
    heavy_ui(
        &mut b,
        &ui,
        "open subscriptions",
        "SubsFragment.onResume",
        1,
    );
    light(
        &mut b,
        &ui,
        "bookmark video",
        "VideoGridFragment.onBookmark",
        3.0,
    );
    b.build()
}

/// All sixteen Table 5 apps.
pub fn apps() -> Vec<App> {
    vec![
        andstatus(),
        dashclock(),
        cyclestreets(),
        k9mail(),
        omninotes(),
        owntracks(),
        qksms(),
        stickercamera(),
        antennapod(),
        merchant(),
        uoitdc(),
        sagemath(),
        radiodroid(),
        gitosc(),
        lenslauncher(),
        skytube(),
    ]
}

/// Bugs whose root-cause API is *not* in the 2017 known-blocking
/// database (and is not reachable by name matching) — the "Missed by
/// Offline" column of Table 5 and the validation set of Table 6.
pub fn is_offline_missed(app: &App, bug: &crate::app::BugSpec) -> bool {
    let api = app.api(bug.api);
    match api.kind {
        crate::api::ApiKind::SelfDeveloped => true,
        crate::api::ApiKind::Blocking { known_since } => match known_since {
            None => true,
            Some(y) => y > 2017,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_apps_all_valid() {
        let apps = apps();
        assert_eq!(apps.len(), 16);
        for app in &apps {
            assert!(app.validate().is_empty(), "{} invalid", app.name);
        }
    }

    #[test]
    fn bug_counts_match_table_5() {
        let expected = [
            ("AndStatus", 3, 2),
            ("DashClock", 1, 0),
            ("CycleStreets", 4, 3),
            ("K9-mail", 2, 2),
            ("Omni-Notes", 3, 3),
            ("OwnTracks", 1, 0),
            ("QKSMS", 3, 3),
            ("StickerCamera", 3, 0),
            ("AntennaPod", 3, 2),
            ("Merchant", 1, 1),
            ("UOITDC Booking", 2, 2),
            ("Sage Math", 3, 2),
            ("RadioDroid", 2, 1),
            ("Git@OSC", 1, 1),
            ("Lens-Launcher", 1, 0),
            ("SkyTube", 1, 1),
        ];
        let apps = apps();
        for (name, bd, mo) in expected {
            let app = apps.iter().find(|a| a.name == name).unwrap();
            assert_eq!(app.bugs.len(), bd, "{name} BD");
            let missed = app
                .bugs
                .iter()
                .filter(|b| is_offline_missed(app, b))
                .count();
            assert_eq!(missed, mo, "{name} MO");
        }
        let total: usize = apps.iter().map(|a| a.bugs.len()).sum();
        assert_eq!(total, 34);
        let missed: usize = apps
            .iter()
            .map(|a| a.bugs.iter().filter(|b| is_offline_missed(a, b)).count())
            .sum();
        assert_eq!(missed, 23);
    }

    #[test]
    fn nested_known_bugs_go_through_open_wrappers() {
        // OwnTracks, SageMath (cupboard), Lens-Launcher: known API via a
        // scannable wrapper, so offline tools still catch them.
        for (app, bug_id) in [
            (owntracks(), "owntracks-303-commit"),
            (sagemath(), "sagemath-84-cupboard"),
            (lenslauncher(), "lenslauncher-15-icons"),
        ] {
            let call = app
                .actions
                .iter()
                .flat_map(|a| a.calls())
                .find(|c| c.bug_id.as_deref() == Some(bug_id))
                .unwrap();
            assert!(!call.via.is_empty(), "{bug_id} should be nested");
            assert!(app.call_visible(call), "{bug_id} should be scannable");
            let bug = app.bug(bug_id).unwrap();
            assert!(!is_offline_missed(&app, bug));
        }
    }

    #[test]
    fn every_app_has_light_and_heavy_ui_actions() {
        for app in apps() {
            let ui_only: Vec<_> = app
                .actions
                .iter()
                .filter(|a| a.bug_ids().is_empty())
                .collect();
            assert!(ui_only.len() >= 2, "{}", app.name);
        }
    }

    #[test]
    fn self_developed_bugs_exist() {
        // QKSMS indexer and AntennaPod queue rebuild are self-developed
        // lengthy operations — undetectable by offline name matching.
        let q = qksms();
        let bug = q.bug("qksms-382-indexer").unwrap();
        assert!(matches!(
            q.api(bug.api).kind,
            crate::api::ApiKind::SelfDeveloped
        ));
        let a = antennapod();
        let bug = a.bug("antennapod-1921-queue").unwrap();
        assert!(matches!(
            a.api(bug.api).kind,
            crate::api::ApiKind::SelfDeveloped
        ));
    }
}
