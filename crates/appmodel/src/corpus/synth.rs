//! Generated bug-free apps filling the study out to 114.
//!
//! The paper tested "about 114 apps" of which only the 24 in Tables 1
//! and 5 showed soft hang problems. The rest are healthy: their actions
//! are UI work of varying weight, some of it heavy enough to exceed
//! 100 ms (keeping the false-positive pressure on every detector).

use hd_simrt::SimRng;

use crate::action::Call;
use crate::app::App;

use super::builder::AppBuilder;

const CATEGORIES: [&str; 10] = [
    "Tools",
    "Social",
    "Productivity",
    "Communication",
    "Travel & Local",
    "Photography",
    "Media & Video",
    "Music & Audio",
    "Education",
    "Business",
];

/// Generates `n` healthy apps, seeded.
pub fn apps(n: usize, seed: u64) -> Vec<App> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n).map(|i| synth_app(i, &mut rng)).collect()
}

fn synth_app(index: usize, rng: &mut SimRng) -> App {
    let name = format!("FieldApp-{:03}", index + 1);
    let package = format!("org.field.app{:03}", index + 1);
    let category = CATEGORIES[rng.index(CATEGORIES.len())];
    let downloads = 10u64.pow(rng.uniform_u64(2, 6) as u32);
    let commit = format!("{:07x}", rng.next_u64() & 0xfff_ffff);
    let mut b = AppBuilder::new(&name, &package, category, downloads, &commit);
    let ui = b.ui_pack();

    // 2-3 light actions.
    let lights = 2 + (rng.index(2));
    for k in 0..lights {
        b.action(
            &format!("light action {}", k + 1),
            2.0 + rng.uniform_f64(0.0, 2.0),
            "MainActivity.onLight",
            20 + k as u32,
            vec![Call::direct(ui.set_text), Call::direct(ui.bind_holder)],
        );
    }
    // 1-3 heavy render-dominant actions (> 100 ms main thread).
    let heavies = 1 + rng.index(3);
    for k in 0..heavies {
        let calls = match k % 3 {
            0 => vec![Call::direct(ui.inflate), Call::direct(ui.layout_children)],
            1 => vec![
                Call::direct(ui.notify_dataset),
                Call::direct(ui.fragment_commit),
            ],
            _ => vec![Call::direct(ui.content_view), Call::direct(ui.scroll_list)],
        };
        b.action(
            &format!("heavy view {}", k + 1),
            1.0,
            "MainActivity.onHeavy",
            60 + k as u32,
            calls,
        );
    }
    // ~25% of healthy apps have a main-thread-heavy UI action that trips
    // the S-Checker symptoms (Diagnoser must prune it).
    if rng.chance(0.25) {
        let calls = if rng.chance(0.5) {
            vec![Call::direct(ui.map_tiles), Call::direct(ui.set_text)]
        } else {
            vec![Call::direct(ui.webview_layout), Call::direct(ui.measure)]
        };
        b.action("tricky view", 0.8, "MainActivity.onTricky", 99, calls);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_apps_are_valid_and_bug_free() {
        let apps = apps(90, 7);
        assert_eq!(apps.len(), 90);
        for app in &apps {
            assert!(app.validate().is_empty(), "{}", app.name);
            assert!(app.bugs.is_empty(), "{} should be healthy", app.name);
            assert!(app.actions.len() >= 3);
        }
    }

    #[test]
    fn generation_is_seeded() {
        let a = apps(10, 3);
        let b = apps(10, 3);
        assert_eq!(a, b);
        let c = apps(10, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn names_are_unique() {
        let apps = apps(50, 1);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 50);
    }
}
