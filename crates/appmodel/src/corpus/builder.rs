//! Fluent builder for corpus apps.

use hd_simrt::ActionUid;

use crate::action::{ActionSpec, Call, EventSpec};
use crate::api::{ApiId, ApiSpec};
use crate::app::{App, BugSpec, ExecutorSpec};
use crate::registry::{self, ApiSet};

/// Ids of the standard UI API pack every corpus app gets.
#[derive(Clone, Copy, Debug)]
pub struct UiPack {
    pub set_text: ApiId,
    pub inflate: ApiId,
    pub seekbar: ApiId,
    pub orientation: ApiId,
    pub scroll_list: ApiId,
    pub notify_dataset: ApiId,
    pub measure: ApiId,
    pub layout_children: ApiId,
    pub map_tiles: ApiId,
    pub content_view: ApiId,
    pub bind_holder: ApiId,
    pub fragment_commit: ApiId,
    pub webview_layout: ApiId,
    pub animation: ApiId,
}

/// Incrementally assembles an [`App`].
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    package: String,
    category: String,
    downloads: u64,
    commit: String,
    set: ApiSet,
    actions: Vec<ActionSpec>,
    bugs: Vec<BugSpec>,
    executors: Vec<ExecutorSpec>,
    next_uid: u64,
}

impl AppBuilder {
    /// Starts an app.
    pub fn new(
        name: &str,
        package: &str,
        category: &str,
        downloads: u64,
        commit: &str,
    ) -> AppBuilder {
        AppBuilder {
            name: name.to_string(),
            package: package.to_string(),
            category: category.to_string(),
            downloads,
            commit: commit.to_string(),
            set: ApiSet::new(),
            actions: Vec::new(),
            bugs: Vec::new(),
            executors: Vec::new(),
            next_uid: 0,
        }
    }

    /// Declares a bounded executor (serial when `width == 1`) and
    /// returns its index for [`Call::submit_to`]/[`Call::submit_join`].
    pub fn executor(&mut self, name: &str, width: usize) -> usize {
        self.executors.push(ExecutorSpec::new(name, width));
        self.executors.len() - 1
    }

    /// Interns an API, returning its id.
    pub fn api(&mut self, spec: ApiSpec) -> ApiId {
        self.set.add(spec)
    }

    /// Interns an API with its time costs (cpu/io bases) scaled.
    pub fn api_scaled(&mut self, mut spec: ApiSpec, factor: f64) -> ApiId {
        spec.cost.cpu.base = (spec.cost.cpu.base as f64 * factor).round() as u64;
        spec.cost.io.base = (spec.cost.io.base as f64 * factor).round() as u64;
        self.set.add(spec)
    }

    /// Interns the standard UI pack.
    pub fn ui_pack(&mut self) -> UiPack {
        UiPack {
            set_text: self.api(registry::ui_set_text()),
            inflate: self.api(registry::ui_inflate()),
            seekbar: self.api(registry::ui_init_seekbar()),
            orientation: self.api(registry::ui_enable_orientation()),
            scroll_list: self.api(registry::ui_scroll_list()),
            notify_dataset: self.api(registry::ui_notify_dataset()),
            measure: self.api(registry::ui_measure()),
            layout_children: self.api(registry::ui_layout_children()),
            map_tiles: self.api(registry::ui_draw_map_tiles()),
            content_view: self.api(registry::ui_set_content_view()),
            bind_holder: self.api(registry::ui_bind_view_holder()),
            fragment_commit: self.api(registry::ui_fragment_commit()),
            webview_layout: self.api(registry::ui_webview_layout()),
            animation: self.api(registry::ui_start_animation()),
        }
    }

    /// Adds a single-event action whose handler is
    /// `<package>.<handler>` at the given line.
    pub fn action(
        &mut self,
        name: &str,
        weight: f64,
        handler: &str,
        line: u32,
        calls: Vec<Call>,
    ) -> ActionUid {
        let uid = ActionUid(self.next_uid);
        self.next_uid += 1;
        let sym = format!("{}.{handler}", self.package);
        self.actions.push(
            ActionSpec::new(uid.0, name, vec![EventSpec::new(&sym, line, calls)]).weighted(weight),
        );
        uid
    }

    /// Adds a multi-event action (each element is `(handler, line, calls)`).
    pub fn action_events(
        &mut self,
        name: &str,
        weight: f64,
        events: Vec<(&str, u32, Vec<Call>)>,
    ) -> ActionUid {
        let uid = ActionUid(self.next_uid);
        self.next_uid += 1;
        let events = events
            .into_iter()
            .map(|(h, line, calls)| EventSpec::new(&format!("{}.{h}", self.package), line, calls))
            .collect();
        self.actions
            .push(ActionSpec::new(uid.0, name, events).weighted(weight));
        uid
    }

    /// Registers a ground-truth bug (the matching call must carry the
    /// same id via [`Call::bug`]).
    pub fn bug(&mut self, id: &str, issue: u32, api: ApiId, action: ActionUid, desc: &str) {
        self.bugs.push(BugSpec {
            id: id.to_string(),
            issue,
            api,
            action,
            description: desc.to_string(),
        });
    }

    /// Finishes the app, validating it.
    ///
    /// # Panics
    ///
    /// Panics if the assembled app is inconsistent — corpus definitions
    /// are static data and must be correct.
    pub fn build(self) -> App {
        let app = App {
            name: self.name,
            package: self.package,
            category: self.category,
            downloads: self.downloads,
            commit: self.commit,
            apis: self.set.into_vec(),
            actions: self.actions,
            bugs: self.bugs,
            executors: self.executors,
        };
        let problems = app.validate();
        assert!(problems.is_empty(), "app '{}': {problems:?}", app.name);
        app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::bitmap_decode_file;

    #[test]
    fn builder_assembles_valid_app() {
        let mut b = AppBuilder::new("X", "org.x", "Tools", 500, "deadbeef");
        let ui = b.ui_pack();
        let decode = b.api(bitmap_decode_file());
        let a = b.action(
            "open",
            2.0,
            "MainActivity.onOpen",
            33,
            vec![Call::direct(ui.set_text), Call::direct(decode).bug("x-1")],
        );
        b.bug("x-1", 7, decode, a, "decode on main");
        let app = b.build();
        assert_eq!(app.actions.len(), 1);
        assert_eq!(app.bugs.len(), 1);
        assert_eq!(app.actions[0].weight, 2.0);
        assert!(app.actions[0].events[0]
            .handler
            .starts_with("org.x.MainActivity"));
    }

    #[test]
    fn api_scaled_multiplies_time_bases() {
        let mut b = AppBuilder::new("X", "org.x", "Tools", 1, "c");
        let base = bitmap_decode_file();
        let cpu_base = base.cost.cpu.base;
        let id = b.api_scaled(base, 2.0);
        let app = {
            let ui = b.ui_pack();
            let _ = ui;
            // Need at least one action referencing the API to validate.
            let a = b.action("t", 1.0, "M.h", 1, vec![Call::direct(id).bug("b")]);
            b.bug("b", 1, id, a, "d");
            b.build()
        };
        assert_eq!(app.api(id).cost.cpu.base, cpu_base * 2);
    }

    #[test]
    #[should_panic(expected = "app 'Bad'")]
    fn builder_panics_on_dangling_bug() {
        let mut b = AppBuilder::new("Bad", "org.bad", "Tools", 1, "c");
        let ui = b.ui_pack();
        let a = b.action("t", 1.0, "M.h", 1, vec![Call::direct(ui.set_text)]);
        b.bug("ghost", 1, ui.set_text, a, "untagged");
        b.build();
    }
}
