//! The eight motivation-study apps of Table 1.
//!
//! These apps carry *well-known* soft hang bugs (database, file, camera,
//! bitmap APIs — all in the offline detectors' database) and a spread of
//! legitimately heavy UI actions. They drive the Table 2 timeout sweep:
//! one SeaDroid bug hangs > 1 s, the FrostWire bug 0.5–1 s, everything
//! else 100–500 ms, and several UI actions exceed 100 ms (the
//! false-positive explosion of a 100 ms timeout).

use crate::action::Call;
use crate::app::App;
use crate::registry as reg;

use super::builder::{AppBuilder, UiPack};

/// Adds a light (sub-100 ms) action.
fn light_action(b: &mut AppBuilder, ui: &UiPack, name: &str, handler: &str, weight: f64) {
    b.action(
        name,
        weight,
        handler,
        40,
        vec![Call::direct(ui.set_text), Call::direct(ui.bind_holder)],
    );
}

/// Adds a heavy UI action around ~120–190 ms of main-thread work (a
/// false positive for a 100 ms timeout, pruned by Hang Doctor).
fn heavy_ui_action(b: &mut AppBuilder, ui: &UiPack, name: &str, handler: &str, variant: usize) {
    let calls = match variant % 4 {
        0 => vec![Call::direct(ui.inflate), Call::direct(ui.measure)],
        1 => vec![
            Call::direct(ui.notify_dataset),
            Call::direct(ui.layout_children),
        ],
        2 => vec![Call::direct(ui.fragment_commit), Call::direct(ui.inflate)],
        _ => vec![Call::direct(ui.webview_layout), Call::direct(ui.set_text)],
    };
    b.action(name, 1.0, handler, 60 + variant as u32, calls);
}

/// Adds a very heavy UI action (~470 ms main-thread work) that can
/// occasionally exceed a 500 ms timeout.
fn very_heavy_ui_action(b: &mut AppBuilder, ui: &UiPack, name: &str, handler: &str) {
    b.action(
        name,
        0.8,
        handler,
        55,
        vec![
            Call::direct(ui.content_view),
            Call::direct(ui.inflate),
            Call::direct(ui.measure),
            Call::direct(ui.layout_children),
            Call::direct(ui.webview_layout),
            Call::direct(ui.bind_holder),
            Call::direct(ui.seekbar),
        ],
    );
}

/// DroidWall: firewall rules written synchronously to disk.
pub fn droidwall() -> App {
    let mut b = AppBuilder::new(
        "DroidWall",
        "com.googlecode.droidwall",
        "Tools",
        50_000,
        "3e2b654",
    );
    let ui = b.ui_pack();
    let apply = b.api_scaled(reg::file_write(), 1.8);
    let a = b.action(
        "apply rules",
        1.5,
        "MainActivity.applyRules",
        210,
        vec![
            Call::direct(ui.set_text),
            Call::direct(apply).bug("droidwall-apply"),
        ],
    );
    b.bug(
        "droidwall-apply",
        0,
        apply,
        a,
        "iptables script written synchronously on the main thread",
    );
    very_heavy_ui_action(&mut b, &ui, "view log", "LogActivity.onCreate");
    heavy_ui_action(&mut b, &ui, "refresh app list", "MainActivity.refresh", 0);
    heavy_ui_action(
        &mut b,
        &ui,
        "open rules editor",
        "RulesActivity.onCreate",
        2,
    );
    light_action(&mut b, &ui, "toggle app", "MainActivity.onToggle", 3.0);
    b.build()
}

/// FrostWire: torrent metadata parsed from disk on open (0.5–1 s hang).
pub fn frostwire() -> App {
    let mut b = AppBuilder::new(
        "FrostWire",
        "com.frostwire.android",
        "Media",
        1_000_000,
        "55427ef",
    );
    let ui = b.ui_pack();
    let torrent = b.api_scaled(reg::file_read(), 4.5);
    let a = b.action(
        "open torrent",
        1.2,
        "TransfersFragment.openTorrent",
        131,
        vec![
            Call::direct(ui.inflate),
            Call::direct(torrent).bug("frostwire-torrent"),
        ],
    );
    b.bug(
        "frostwire-torrent",
        0,
        torrent,
        a,
        "torrent metadata read on the main thread",
    );
    for (i, (name, handler)) in [
        ("browse library", "LibraryFragment.onResume"),
        ("open transfers", "TransfersFragment.onResume"),
        ("expand details", "TransferDetailActivity.onCreate"),
        ("switch tab", "MainActivity.onTabSelected"),
        ("open settings", "SettingsActivity.onCreate"),
    ]
    .iter()
    .enumerate()
    {
        heavy_ui_action(&mut b, &ui, name, handler, i);
    }
    light_action(
        &mut b,
        &ui,
        "pause transfer",
        "TransfersFragment.onPause",
        3.0,
    );
    b.build()
}

/// Ushaidi: crisis reports loaded from SQLite; photos decoded inline.
pub fn ushaidi() -> App {
    let mut b = AppBuilder::new(
        "Ushaidi",
        "com.ushahidi.android",
        "Social",
        50_000,
        "59fbb533d0",
    );
    let ui = b.ui_pack();
    let query = b.api_scaled(reg::sqlite_query(), 1.2);
    let decode = b.api(reg::bitmap_decode_file());
    let a1 = b.action(
        "load reports",
        1.3,
        "ReportsActivity.loadReports",
        88,
        vec![
            Call::direct(ui.notify_dataset),
            Call::direct(query).bug("ushaidi-query"),
        ],
    );
    b.bug(
        "ushaidi-query",
        0,
        query,
        a1,
        "report query on the main thread",
    );
    let a2 = b.action(
        "attach photo",
        0.8,
        "AddReportActivity.onPhotoPicked",
        167,
        vec![
            Call::direct(ui.set_text),
            Call::direct(decode).bug("ushaidi-decode"),
        ],
    );
    b.bug(
        "ushaidi-decode",
        0,
        decode,
        a2,
        "photo decoded on the main thread",
    );
    very_heavy_ui_action(&mut b, &ui, "open map", "MapActivity.onCreate");
    heavy_ui_action(
        &mut b,
        &ui,
        "open report",
        "ReportDetailActivity.onCreate",
        1,
    );
    heavy_ui_action(
        &mut b,
        &ui,
        "filter categories",
        "ReportsActivity.onFilter",
        2,
    );
    light_action(&mut b, &ui, "mark read", "ReportsActivity.onMarkRead", 2.5);
    b.build()
}

/// WebSMS: synchronous preference flush when sending.
pub fn websms() -> App {
    let mut b = AppBuilder::new(
        "WebSMS",
        "de.ub0r.android.websms",
        "Communication",
        1_000_000,
        "1f596fbd29",
    );
    let ui = b.ui_pack();
    let commit = b.api_scaled(reg::prefs_commit(), 1.6);
    let a = b.action(
        "send sms",
        1.5,
        "WebSMSActivity.send",
        412,
        vec![
            Call::direct(ui.set_text),
            Call::direct(commit).bug("websms-commit"),
        ],
    );
    b.bug(
        "websms-commit",
        0,
        commit,
        a,
        "draft committed synchronously before send",
    );
    // A multi-input-event action: typing delivers two input events
    // (text change + suggestion refresh); the action's response time is
    // the maximum over its events (Section 2.2).
    b.action_events(
        "type message",
        2.0,
        vec![
            (
                "WebSMSActivity.onTextChanged",
                233,
                vec![Call::direct(ui.set_text)],
            ),
            (
                "WebSMSActivity.onSuggest",
                241,
                vec![Call::direct(ui.bind_holder), Call::direct(ui.set_text)],
            ),
        ],
    );
    heavy_ui_action(&mut b, &ui, "open composer", "WebSMSActivity.onCreate", 0);
    heavy_ui_action(
        &mut b,
        &ui,
        "load conversation",
        "ConversationActivity.onCreate",
        1,
    );
    heavy_ui_action(
        &mut b,
        &ui,
        "open connector list",
        "ConnectorActivity.onCreate",
        3,
    );
    light_action(
        &mut b,
        &ui,
        "select recipient",
        "WebSMSActivity.onRecipient",
        3.0,
    );
    b.build()
}

/// cgeo: geocaching client with five known blocking call sites.
pub fn cgeo() -> App {
    let mut b = AppBuilder::new(
        "cgeo",
        "cgeo.geocaching",
        "Travel & Local",
        1_000_000,
        "6e4a8d4ba8",
    );
    let ui = b.ui_pack();
    let query = b.api_scaled(reg::sqlite_query(), 1.2);
    let track = b.api_scaled(reg::file_read(), 1.5);
    let decode = b.api(reg::bitmap_decode_file());
    let prefs = b.api_scaled(reg::prefs_commit(), 1.5);
    let asset = b.api_scaled(reg::asset_open(), 1.5);
    let specs: [(&str, &str, u32, crate::api::ApiId, &str); 5] = [
        (
            "open cache list",
            "CacheListActivity.onResume",
            77,
            query,
            "cgeo-query",
        ),
        (
            "import track",
            "TrackUtils.onImport",
            142,
            track,
            "cgeo-track",
        ),
        (
            "show cache image",
            "ImagesActivity.onOpen",
            58,
            decode,
            "cgeo-decode",
        ),
        (
            "save filter",
            "FilterActivity.onSave",
            93,
            prefs,
            "cgeo-prefs",
        ),
        (
            "load map theme",
            "MapActivity.loadTheme",
            119,
            asset,
            "cgeo-asset",
        ),
    ];
    for (name, handler, line, api, bug_id) in specs {
        let a = b.action(
            name,
            1.0,
            handler,
            line,
            vec![Call::direct(ui.set_text), Call::direct(api).bug(bug_id)],
        );
        b.bug(bug_id, 0, api, a, "known blocking API on the main thread");
    }
    very_heavy_ui_action(&mut b, &ui, "render live map", "MapActivity.onDraw");
    b.action(
        "pan map",
        1.2,
        "MapActivity.onPan",
        140,
        vec![Call::direct(ui.map_tiles), Call::direct(ui.inflate)],
    );
    heavy_ui_action(
        &mut b,
        &ui,
        "open cache detail",
        "CacheDetailActivity.onCreate",
        1,
    );
    heavy_ui_action(
        &mut b,
        &ui,
        "open waypoints",
        "WaypointsActivity.onCreate",
        2,
    );
    heavy_ui_action(&mut b, &ui, "open logbook", "LogbookActivity.onCreate", 3);
    light_action(&mut b, &ui, "star cache", "CacheDetailActivity.onStar", 2.5);
    b.build()
}

/// Seadroid: library synced from disk on open (> 1 s hang).
pub fn seadroid() -> App {
    let mut b = AppBuilder::new(
        "Seadroid",
        "com.seafile.seadroid2",
        "Productivity",
        100_000,
        "5a7531d",
    );
    let ui = b.ui_pack();
    let sync = b.api_scaled(reg::file_read(), 10.0);
    let a = b.action(
        "open library",
        1.0,
        "BrowserActivity.openLibrary",
        201,
        vec![
            Call::direct(ui.notify_dataset),
            Call::direct(sync).bug("seadroid-sync"),
        ],
    );
    b.bug(
        "seadroid-sync",
        0,
        sync,
        a,
        "library cache re-read synchronously (> 1 s)",
    );
    very_heavy_ui_action(&mut b, &ui, "open gallery", "GalleryActivity.onCreate");
    very_heavy_ui_action(
        &mut b,
        &ui,
        "preview document",
        "DocPreviewActivity.onCreate",
    );
    heavy_ui_action(&mut b, &ui, "list files", "BrowserActivity.onResume", 0);
    heavy_ui_action(&mut b, &ui, "open account", "AccountActivity.onCreate", 1);
    heavy_ui_action(&mut b, &ui, "open starred", "StarredActivity.onCreate", 2);
    heavy_ui_action(
        &mut b,
        &ui,
        "open activity feed",
        "ActivitiesFragment.onResume",
        3,
    );
    light_action(&mut b, &ui, "select file", "BrowserActivity.onSelect", 3.0);
    b.build()
}

/// FBReaderJ: e-book reader with six known blocking call sites.
pub fn fbreaderj() -> App {
    let mut b = AppBuilder::new(
        "FBReaderJ",
        "org.geometerplus.fbreader",
        "Books",
        1_000_000,
        "0f02d4e923",
    );
    let ui = b.ui_pack();
    let asset = b.api_scaled(reg::asset_open(), 1.5);
    let read = b.api_scaled(reg::file_read(), 1.4);
    let query = b.api_scaled(reg::sqlite_query(), 1.2);
    let decode = b.api(reg::bitmap_decode_file());
    let prefs = b.api_scaled(reg::prefs_commit(), 1.5);
    let write = b.api_scaled(reg::file_write(), 1.4);
    let specs: [(&str, &str, u32, crate::api::ApiId, &str); 6] = [
        ("open book", "FBReader.openBook", 301, read, "fbreader-open"),
        (
            "load hyphenation",
            "ZLTextModel.loadHyphenation",
            95,
            asset,
            "fbreader-asset",
        ),
        (
            "search library",
            "LibraryActivity.onSearch",
            152,
            query,
            "fbreader-query",
        ),
        (
            "show cover",
            "CoverManager.onShow",
            71,
            decode,
            "fbreader-cover",
        ),
        (
            "save position",
            "FBReader.onPause",
            507,
            prefs,
            "fbreader-prefs",
        ),
        (
            "export notes",
            "NotesActivity.onExport",
            188,
            write,
            "fbreader-notes",
        ),
    ];
    for (name, handler, line, api, bug_id) in specs {
        let a = b.action(
            name,
            1.0,
            handler,
            line,
            vec![Call::direct(ui.set_text), Call::direct(api).bug(bug_id)],
        );
        b.bug(bug_id, 0, api, a, "known blocking API on the main thread");
    }
    very_heavy_ui_action(&mut b, &ui, "relayout chapter", "ZLTextView.onRelayout");
    very_heavy_ui_action(&mut b, &ui, "open library view", "LibraryActivity.onCreate");
    heavy_ui_action(&mut b, &ui, "open toc", "TOCActivity.onCreate", 0);
    heavy_ui_action(
        &mut b,
        &ui,
        "open settings",
        "PreferenceActivity.onCreate",
        1,
    );
    light_action(&mut b, &ui, "turn page", "ZLTextView.onPage", 4.0);
    b.build()
}

/// A Better Camera: the Figure 1 app. The `resume` action executes
/// `setParameters`, `open` (the bug), `setText`, `inflate`,
/// `SeekBar.<init>` and `OrientationEventListener.enable` — 423 ms buggy,
/// ~160 ms once `open` moves to a worker.
pub fn a_better_camera() -> App {
    let mut b = AppBuilder::new(
        "A Better Camera",
        "com.almalence.opencam",
        "Photography",
        1_000_000,
        "9f8e3b0",
    );
    let ui = b.ui_pack();
    let set_params = b.api(reg::camera_set_parameters());
    let open = b.api(reg::camera_open());
    let decode = b.api(reg::bitmap_decode_file());
    let resume = b.action(
        "resume",
        1.5,
        "MainScreen.onResume",
        489,
        vec![
            Call::direct(set_params),
            Call::direct(open).bug("abc-open"),
            Call::direct(ui.set_text),
            Call::direct(ui.inflate),
            Call::direct(ui.seekbar),
            Call::direct(ui.orientation),
        ],
    );
    b.bug(
        "abc-open",
        0,
        open,
        resume,
        "camera.open blocks the main thread while connecting to the camera service",
    );
    let gallery = b.action(
        "open gallery",
        1.0,
        "GalleryActivity.onOpen",
        77,
        vec![
            Call::direct(ui.bind_holder),
            Call::direct(decode).bug("abc-decode"),
        ],
    );
    b.bug(
        "abc-decode",
        0,
        decode,
        gallery,
        "full-size preview decoded on the main thread",
    );
    heavy_ui_action(&mut b, &ui, "open mode panel", "ModePanel.onOpen", 0);
    heavy_ui_action(&mut b, &ui, "open settings", "SettingsActivity.onCreate", 1);
    heavy_ui_action(&mut b, &ui, "switch camera ui", "MainScreen.onSwitch", 2);
    heavy_ui_action(&mut b, &ui, "show histogram", "HistogramView.onShow", 3);
    light_action(&mut b, &ui, "tap to focus", "MainScreen.onTouch", 4.0);
    b.build()
}

/// All eight Table 1 apps.
pub fn apps() -> Vec<App> {
    vec![
        droidwall(),
        frostwire(),
        ushaidi(),
        websms(),
        cgeo(),
        seadroid(),
        fbreaderj(),
        a_better_camera(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_simrt::MILLIS;

    #[test]
    fn eight_apps_all_valid() {
        let apps = apps();
        assert_eq!(apps.len(), 8);
        for app in &apps {
            assert!(app.validate().is_empty(), "{} invalid", app.name);
        }
    }

    #[test]
    fn bug_counts_match_table_2_true_positive_row() {
        // 1+1+2+1+5+1+6+2 = 19 known bugs (Table 2's 19/19 at 100 ms).
        let total: usize = apps().iter().map(|a| a.bugs.len()).sum();
        assert_eq!(total, 19);
    }

    #[test]
    fn all_table1_bugs_use_offline_known_apis() {
        for app in apps() {
            for bug in &app.bugs {
                assert!(
                    app.api(bug.api).known_blocking_in(2017),
                    "{}: {} not offline-known",
                    app.name,
                    bug.id
                );
            }
        }
    }

    #[test]
    fn seadroid_bug_exceeds_one_second() {
        let app = seadroid();
        let bug = &app.bugs[0];
        let cost = app.api(bug.api).cost;
        let busy = cost.cpu.base + cost.io.base;
        assert!(busy > 1_000 * MILLIS, "busy {busy}");
    }

    #[test]
    fn only_frostwire_and_seadroid_exceed_half_second() {
        for app in apps() {
            for bug in &app.bugs {
                let cost = app.api(bug.api).cost;
                let busy = cost.cpu.base + cost.io.base;
                let long = busy > 450 * MILLIS;
                let expected = matches!(app.name.as_str(), "FrostWire" | "Seadroid");
                assert_eq!(long, expected, "{} bug {} busy {busy}", app.name, bug.id);
            }
        }
    }

    #[test]
    fn every_app_has_ui_only_actions() {
        for app in apps() {
            let ui_only = app
                .actions
                .iter()
                .filter(|a| a.bug_ids().is_empty())
                .count();
            assert!(ui_only >= 3, "{} has only {ui_only} UI actions", app.name);
        }
    }
}
