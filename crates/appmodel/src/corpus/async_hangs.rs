//! Ground-truthed async hang apps — the corpus's `async-hang` bug
//! class.
//!
//! Each app here hangs through a *wait edge* rather than inline blocking
//! work: the main thread posts tasks to a bounded executor and then
//! blocks in a future join (`FutureTask.get`) whose completion is held
//! up on a worker thread. The three shapes mirror PersisDroid's async
//! hang taxonomy:
//!
//! * **serial-executor convoy** ([`chatrelay`]) — a fast joined task is
//!   queued behind a slow fire-and-forget task on a width-1 executor;
//! * **pool starvation** ([`pixelpress`]) — every pool thread is busy
//!   with slow tasks, so the joined task cannot even start;
//! * **slow worker join** ([`newsflash`]) — the joined task itself runs
//!   a slow API.
//!
//! In all three the *join site* is innocent: the culprit is the API the
//! worker executes (the ground-truth `BugSpec::api`). A counter-only
//! checker still detects the main-thread stall, but only a causal blame
//! walk across the wait edge names the right API. [`quicknote`] is the
//! negative control: a joined task that completes well inside the
//! responsiveness budget, so no blame of any kind should be emitted.
//!
//! Like the vendored apps, these stay out of [`super::full_corpus`]
//! (whose population pins the paper's study counts) and are composed
//! explicitly by the differential harnesses.

use crate::action::Call;
use crate::api::{ApiKind, ApiSpec, CostSpec};
use crate::app::App;
use crate::profile::ProfileKind;
use crate::registry as reg;

use super::builder::AppBuilder;

/// The main-thread join API all async apps block in: zero-cost itself —
/// every nanosecond spent inside it is wait-edge time.
fn future_get() -> ApiSpec {
    ApiSpec::new(
        "java.util.concurrent.FutureTask.get",
        187,
        ApiKind::Blocking { known_since: None },
        CostSpec::none(),
    )
}

/// ChatRelay: messaging app with a width-1 "message serial executor"
/// convoy.
///
/// Sending a message first posts a slow fire-and-forget render of the
/// conversation transcript, then posts the actual send and joins it.
/// The send task is cheap, but the serial executor runs the transcript
/// render first — the join inherits the convoy head's latency. Ground
/// truth blames the render API, not `FutureTask.get`.
pub fn chatrelay() -> App {
    let mut b = AppBuilder::new(
        "ChatRelay",
        "com.chatrelay",
        "Communication",
        250_000,
        "4d1c9a2",
    );
    let ui = b.ui_pack();
    let serial = b.executor("msg-serial", 1);
    let render = b.api(reg::markdown_render());
    let send = b.api(reg::self_developed(
        "com.chatrelay.net.MessageSender.send",
        58,
        4,
        ProfileKind::Compute,
    ));
    let compose = b.api(reg::self_developed(
        "com.chatrelay.model.Draft.toMessage",
        31,
        2,
        ProfileKind::Compute,
    ));
    let fut = b.api(future_get());
    // The handler blocks in the join before it draws anything, so the
    // render thread stays idle through the hang — the "main blocked,
    // render quiet" signature the context-switch symptom keys on.
    let send_msg = b.action(
        "send message",
        2.0,
        "ConversationActivity.onSend",
        214,
        vec![
            Call::direct(compose),
            Call::direct(render)
                .submit_to(serial)
                .bug("chatrelay-21-convoy"),
            Call::direct(send).submit_join(serial, fut),
        ],
    );
    b.bug(
        "chatrelay-21-convoy",
        21,
        render,
        send_msg,
        "transcript render convoys the serial executor; the joined send queues behind it",
    );
    b.action(
        "open conversation",
        1.5,
        "ConversationActivity.onCreate",
        66,
        vec![Call::direct(ui.inflate), Call::direct(ui.bind_holder)],
    );
    b.action(
        "scroll history",
        2.5,
        "ConversationActivity.onScroll",
        131,
        vec![Call::direct(ui.scroll_list)],
    );
    b.build()
}

/// PixelPress: photo editor whose width-2 thumbnail pool is starved.
///
/// Opening an album posts two slow thumbnail rescales that occupy both
/// pool threads, then joins a cheap EXIF read on the same pool. The
/// joined task is stuck in the queue until a slot frees, so the main
/// thread stalls on work it never submitted. The first saturating
/// rescale (the one the blame walk reaches through the queue head) is
/// the ground-truth culprit.
pub fn pixelpress() -> App {
    let mut b = AppBuilder::new(
        "PixelPress",
        "com.pixelpress",
        "Photography",
        900_000,
        "b7e03f8",
    );
    let ui = b.ui_pack();
    let pool = b.executor("thumb-pool", 2);
    let resize = b.api_scaled(reg::thumbnail_resize(), 2.0);
    let exif = b.api(reg::self_developed(
        "com.pixelpress.media.ExifReader.read",
        92,
        5,
        ProfileKind::MemoryHeavy,
    ));
    let scan = b.api(reg::self_developed(
        "com.pixelpress.media.AlbumIndex.list",
        67,
        3,
        ProfileKind::Compute,
    ));
    let fut = b.api(future_get());
    let open_album = b.action(
        "open album",
        1.0,
        "AlbumActivity.onOpen",
        173,
        vec![
            Call::direct(scan),
            Call::direct(resize)
                .submit_to(pool)
                .bug("pixelpress-14-starve"),
            Call::direct(resize).submit_to(pool),
            Call::direct(exif).submit_join(pool, fut),
        ],
    );
    b.bug(
        "pixelpress-14-starve",
        14,
        resize,
        open_album,
        "thumbnail rescales saturate the pool; the joined EXIF read starves in the queue",
    );
    b.action(
        "crop photo",
        1.5,
        "EditorActivity.onCrop",
        247,
        vec![Call::direct(ui.set_text), Call::direct(ui.animation)],
    );
    b.action(
        "browse grid",
        3.0,
        "AlbumActivity.onScroll",
        205,
        vec![Call::direct(ui.scroll_list), Call::direct(ui.bind_holder)],
    );
    b.build()
}

/// NewsFlash: feed reader that joins a slow worker directly.
///
/// Refreshing posts the feed parse to a fetch executor and immediately
/// joins the future — textbook `AsyncTask.execute(); future.get()`.
/// The wait edge ends at the running task, whose XML parse is the
/// ground-truth culprit.
pub fn newsflash() -> App {
    let mut b = AppBuilder::new(
        "NewsFlash",
        "com.newsflash",
        "News & Magazines",
        400_000,
        "1fa88c0",
    );
    let ui = b.ui_pack();
    let fetch = b.executor("feed-fetch", 1);
    let parse = b.api(reg::feed_parse());
    let stale = b.api(reg::self_developed(
        "com.newsflash.feed.FeedCache.checkStale",
        23,
        2,
        ProfileKind::Compute,
    ));
    let fut = b.api(future_get());
    let refresh = b.action(
        "refresh feed",
        2.0,
        "FeedActivity.onRefresh",
        119,
        vec![
            Call::direct(stale),
            Call::direct(parse)
                .submit_join(fetch, fut)
                .bug("newsflash-6-parse"),
        ],
    );
    b.bug(
        "newsflash-6-parse",
        6,
        parse,
        refresh,
        "feed parse posted to a worker but joined immediately on the main thread",
    );
    b.action(
        "open article",
        2.0,
        "ArticleActivity.onCreate",
        54,
        vec![Call::direct(ui.inflate), Call::direct(ui.webview_layout)],
    );
    b.action(
        "scroll headlines",
        3.0,
        "FeedActivity.onScroll",
        98,
        vec![Call::direct(ui.scroll_list)],
    );
    b.build()
}

/// QuickNote: negative control — the join completes in time.
///
/// Saving a note joins a draft persist of a few milliseconds on an idle
/// serial executor. The wait edge exists but never holds the main
/// thread past the responsiveness budget, so neither the detector nor
/// the blame walk should report anything.
pub fn quicknote() -> App {
    let mut b = AppBuilder::new(
        "QuickNote",
        "com.quicknote",
        "Productivity",
        120_000,
        "e92d517",
    );
    let ui = b.ui_pack();
    let saver = b.executor("draft-save", 1);
    let persist = b.api(reg::self_developed(
        "com.quicknote.sync.DraftSaver.persist",
        41,
        6,
        ProfileKind::Compute,
    ));
    let fut = b.api(future_get());
    b.action(
        "save note",
        2.0,
        "NoteActivity.onSave",
        88,
        vec![
            Call::direct(ui.set_text),
            Call::direct(persist).submit_join(saver, fut),
        ],
    );
    b.action(
        "open note",
        2.0,
        "NoteActivity.onCreate",
        37,
        vec![Call::direct(ui.inflate)],
    );
    b.action(
        "browse notes",
        2.5,
        "ListActivity.onScroll",
        120,
        vec![Call::direct(ui.scroll_list), Call::direct(ui.bind_holder)],
    );
    b.build()
}

/// All async hang apps (three hang shapes plus the negative control).
pub fn apps() -> Vec<App> {
    vec![chatrelay(), pixelpress(), newsflash(), quicknote()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_apps_validate() {
        for app in apps() {
            assert!(
                app.validate().is_empty(),
                "{}: {:?}",
                app.name,
                app.validate()
            );
        }
    }

    #[test]
    fn hang_apps_tag_worker_side_culprits() {
        for app in [chatrelay(), pixelpress(), newsflash()] {
            assert_eq!(app.bugs.len(), 1, "{}", app.name);
            let bug = &app.bugs[0];
            // The ground-truth API is the worker-side culprit, never the
            // join API the main thread blocks in.
            assert_ne!(
                app.api(bug.api).symbol,
                "java.util.concurrent.FutureTask.get",
                "{}: bug must not blame the join site",
                app.name
            );
            // And the tagged call site is an async submission.
            let call = app
                .actions
                .iter()
                .flat_map(|a| a.calls())
                .find(|c| c.bug_id.as_deref() == Some(bug.id.as_str()))
                .unwrap();
            assert!(call.async_op.is_some(), "{}", app.name);
        }
    }

    #[test]
    fn control_app_has_no_bugs() {
        let app = quicknote();
        assert!(app.bugs.is_empty());
        // But it does exercise the wait edge.
        assert!(app.actions.iter().flat_map(|a| a.calls()).any(|c| c
            .async_op
            .as_ref()
            .and_then(|o| o.join_api())
            .is_some()));
    }

    #[test]
    fn every_app_declares_its_executors() {
        for app in apps() {
            assert!(!app.executors.is_empty(), "{}", app.name);
        }
    }

    /// Seed-swept task-graph invariants over the whole async corpus:
    /// no task ever starts before its submit edge, every task finishes,
    /// and at no instant does an executor run more tasks than its width.
    #[test]
    fn task_graph_invariants_hold_across_seeds() {
        use crate::compile::CompiledApp;
        use crate::trace::{build_run, round_robin_schedule};
        use hd_simrt::{SimConfig, TaskStatus};
        for app in apps() {
            let widths: Vec<usize> = app.executors.iter().map(|e| e.width).collect();
            let name = app.name.clone();
            let compiled = CompiledApp::new(app);
            let sched = round_robin_schedule(compiled.app(), 3, 2_500);
            for seed in [1u64, 7, 23, 42, 99] {
                let mut run = build_run(&compiled, &sched, SimConfig::default(), seed);
                run.sim.run();
                let tasks = run.sim.task_records();
                assert!(!tasks.is_empty(), "{name}/{seed}: corpus apps post tasks");
                for t in &tasks {
                    assert_eq!(t.status, TaskStatus::Done, "{name}/{seed}: {t:?}");
                    let started = t.started.unwrap();
                    assert!(started >= t.posted, "{name}/{seed}: ran before submit");
                    assert!(t.finished.unwrap() >= started, "{name}/{seed}: {t:?}");
                }
                for (ex, &width) in widths.iter().enumerate() {
                    let intervals: Vec<(u64, u64)> = tasks
                        .iter()
                        .filter(|t| t.executor == ex)
                        .map(|t| (t.started.unwrap().0, t.finished.unwrap().0))
                        .collect();
                    for &(s, _) in &intervals {
                        let running = intervals.iter().filter(|&&(a, b)| a <= s && s < b).count();
                        assert!(
                            running <= width,
                            "{name}/{seed}: executor {ex} ran {running} tasks, width {width}"
                        );
                    }
                }
            }
        }
    }
}
