//! Apps whose actions share open helper wrappers — the corpus's
//! shared-wrapper false-positive population.
//!
//! A context-insensitive interprocedural scanner aggregates everything a
//! wrapper was ever observed forwarding to, so one blocking caller
//! contaminates every benign caller of the same helper. These apps make
//! that failure mode ground truth: each has exactly one real bug (a
//! blocking API reached through a shared open wrapper, heavy enough for
//! runtime confirmation) plus one or more UI-only actions entering the
//! *same* wrapper. A precise analysis flags only the buggy site; the
//! aggregated one drags the benign callers in. Like the vendored apps,
//! they are kept out of [`super::full_corpus`] (whose population pins
//! the paper's study counts) and composed explicitly by the
//! differentials.

use crate::action::Call;
use crate::app::App;
use crate::registry as reg;

use super::builder::AppBuilder;

/// NoteKeeper: one repository helper backs both persistence and pure
/// view refreshes.
///
/// `NoteRepo.sync` forwards to a synchronous SQLite query when saving
/// (`notekeeper-4-sync`, real) and to an adapter refresh when merely
/// redrawing the list (benign). Two UI-only actions enter the helper.
pub fn notekeeper() -> App {
    let mut b = AppBuilder::new(
        "NoteKeeper",
        "com.notekeeper",
        "Productivity",
        250_000,
        "4c7e9a1",
    );
    let ui = b.ui_pack();
    let repo = b.api(reg::wrapper("com.notekeeper.data.NoteRepo.sync", 58));
    let query = b.api_scaled(reg::sqlite_query(), 1.3);
    let save = b.action(
        "save note",
        1.0,
        "EditorActivity.onSave",
        120,
        vec![
            Call::direct(ui.set_text),
            Call::via(vec![repo], query).bug("notekeeper-4-sync"),
        ],
    );
    b.bug(
        "notekeeper-4-sync",
        4,
        query,
        save,
        "the shared repo helper queries the note table synchronously on save",
    );
    b.action(
        "refresh list",
        2.0,
        "NoteListFragment.onRefresh",
        64,
        vec![Call::via(vec![repo], ui.notify_dataset)],
    );
    b.action(
        "reorder notes",
        1.5,
        "NoteListFragment.onReorder",
        83,
        vec![
            Call::via(vec![repo], ui.bind_holder),
            Call::direct(ui.scroll_list),
        ],
    );
    b.build()
}

/// PhotoBox: a two-deep helper chain shared between export and preview.
///
/// `Exporter.run → ImagePipeline.process` writes the file on export
/// (`photobox-11-export`, real); the preview action enters the same
/// chain for pure view work. Exercises contamination through a chain,
/// not just a single frame.
pub fn photobox() -> App {
    let mut b = AppBuilder::new(
        "PhotoBox",
        "com.photobox",
        "Photography",
        1_000_000,
        "b83d520",
    );
    let ui = b.ui_pack();
    let exporter = b.api(reg::wrapper("com.photobox.io.Exporter.run", 31));
    let pipeline = b.api(reg::wrapper("com.photobox.io.ImagePipeline.process", 102));
    let write = b.api_scaled(reg::file_write(), 1.4);
    let export = b.action(
        "export photo",
        1.0,
        "ExportActivity.onExport",
        77,
        vec![
            Call::direct(ui.set_text),
            Call::via(vec![exporter, pipeline], write).bug("photobox-11-export"),
        ],
    );
    b.bug(
        "photobox-11-export",
        11,
        write,
        export,
        "the export pipeline writes the encoded image synchronously",
    );
    b.action(
        "preview photo",
        2.5,
        "PreviewActivity.onShow",
        45,
        vec![
            Call::via(vec![exporter, pipeline], ui.inflate),
            Call::direct(ui.animation),
        ],
    );
    b.build()
}

/// All shared-wrapper apps.
pub fn apps() -> Vec<App> {
    vec![notekeeper(), photobox()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apps_validate_with_one_bug_each() {
        for app in apps() {
            assert!(
                app.validate().is_empty(),
                "{}: {:?}",
                app.name,
                app.validate()
            );
            assert_eq!(app.bugs.len(), 1, "{}", app.name);
        }
    }

    #[test]
    fn every_bug_chain_is_fully_open() {
        // The point of this population is *precision*, so the bugs must
        // be catchable by every scanner arm: whole chain visible.
        for app in apps() {
            for bug in &app.bugs {
                let call = app
                    .actions
                    .iter()
                    .flat_map(|a| a.calls())
                    .find(|c| c.bug_id.as_deref() == Some(bug.id.as_str()))
                    .unwrap();
                assert!(app.call_visible(call), "{}: {}", app.name, bug.id);
                assert!(
                    !call.via.is_empty(),
                    "{}: bug must route through the shared wrapper",
                    app.name
                );
            }
        }
    }

    #[test]
    fn benign_actions_share_the_buggy_wrapper() {
        // Every app has at least one bug-free action entering a wrapper
        // that some buggy call also enters — the contamination setup.
        for app in apps() {
            let buggy_wrappers: Vec<_> = app
                .actions
                .iter()
                .flat_map(|a| a.calls())
                .filter(|c| c.bug_id.is_some())
                .flat_map(|c| c.via.iter().copied())
                .collect();
            let benign_sharing = app
                .actions
                .iter()
                .filter(|a| a.calls().all(|c| c.bug_id.is_none()))
                .any(|a| {
                    a.calls()
                        .any(|c| c.via.iter().any(|w| buggy_wrappers.contains(w)))
                });
            assert!(benign_sharing, "{}", app.name);
        }
    }
}
