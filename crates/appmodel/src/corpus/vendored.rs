//! Apps built on closed-source vendor SDKs — the corpus's
//! `closed-source` bug class.
//!
//! Table 1 and Table 5 cover the paper's *unknown-API* and
//! *self-developed* offline failure modes; this module supplies the
//! third one (Section 1): blocking calls hidden inside closed-source
//! libraries, where even a perfect name-matching scanner has nothing to
//! scan. These apps are kept out of [`super::full_corpus`] (whose
//! population pins the paper's study counts) and composed explicitly by
//! the static↔runtime differential.

use crate::action::Call;
use crate::api::{ApiKind, ApiSpec, CostSpec};
use crate::app::App;
use crate::dist::Dist;
use crate::registry as reg;
use hd_simrt::MILLIS;

use super::builder::AppBuilder;

/// The closed vendor SDK's own blocking API: a tile cache preload that
/// hits disk, shipped only as a binary.
fn vendor_tile_preload() -> ApiSpec {
    ApiSpec::new(
        "com.vendor.maps.TileCache.preload",
        133,
        ApiKind::Blocking { known_since: None },
        CostSpec::io(Dist::new(10 * MILLIS, 0.3), Dist::new(260 * MILLIS, 0.3)).chunks(10),
    )
    .closed()
}

/// TrackPro: fitness tracker built on two closed vendor SDKs.
///
/// Three ground-truth bugs spanning the offline-visibility spectrum:
///
/// * `trackpro-3-commit` — a known blocking API called directly
///   (offline tools catch it; class `known`);
/// * `trackpro-7-flush` — a known blocking API hidden behind the closed
///   analytics SDK's `flush` entry point (class `closed-source`);
/// * `trackpro-9-preload` — the closed maps SDK blocking internally
///   (class `closed-source`).
pub fn trackpro() -> App {
    let mut b = AppBuilder::new(
        "TrackPro",
        "com.trackpro",
        "Health & Fitness",
        500_000,
        "9f21bb4",
    );
    let ui = b.ui_pack();
    let commit = b.api_scaled(reg::prefs_commit(), 1.2);
    let write = b.api_scaled(reg::file_write(), 1.2);
    let tracker = b.api(reg::closed_wrapper(
        "com.vendor.analytics.AnalyticsTracker.flush",
        71,
    ));
    let preload = b.api(vendor_tile_preload());
    let save = b.action(
        "save workout",
        1.0,
        "WorkoutActivity.onSave",
        164,
        vec![
            Call::direct(ui.set_text),
            Call::direct(commit).bug("trackpro-3-commit"),
        ],
    );
    b.bug(
        "trackpro-3-commit",
        3,
        commit,
        save,
        "workout settings committed synchronously",
    );
    let log = b.action(
        "log activity",
        1.5,
        "ActivityLogFragment.onLog",
        88,
        vec![
            Call::direct(ui.notify_dataset),
            Call::via(vec![tracker], write).bug("trackpro-7-flush"),
        ],
    );
    b.bug(
        "trackpro-7-flush",
        7,
        write,
        log,
        "analytics SDK flushes its event file synchronously; the SDK ships closed-source",
    );
    let map = b.action(
        "open route map",
        1.0,
        "RouteMapActivity.onResume",
        212,
        vec![
            Call::direct(ui.map_tiles),
            Call::direct(preload).bug("trackpro-9-preload"),
        ],
    );
    b.bug(
        "trackpro-9-preload",
        9,
        preload,
        map,
        "closed maps SDK preloads its tile cache from disk on the main thread",
    );
    b.action(
        "open dashboard",
        1.0,
        "DashboardActivity.onCreate",
        41,
        vec![Call::direct(ui.inflate), Call::direct(ui.layout_children)],
    );
    b.action(
        "start timer",
        3.0,
        "WorkoutActivity.onStart",
        59,
        vec![Call::direct(ui.set_text), Call::direct(ui.bind_holder)],
    );
    b.build()
}

/// All vendored-SDK apps.
pub fn apps() -> Vec<App> {
    vec![trackpro()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trackpro_validates() {
        let app = trackpro();
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        assert_eq!(app.bugs.len(), 3);
    }

    #[test]
    fn closed_bugs_are_invisible_to_scanners() {
        let app = trackpro();
        for bug_id in ["trackpro-7-flush", "trackpro-9-preload"] {
            let call = app
                .actions
                .iter()
                .flat_map(|a| a.calls())
                .find(|c| c.bug_id.as_deref() == Some(bug_id))
                .unwrap();
            assert!(!app.call_visible(call), "{bug_id} should be hidden");
        }
        let commit = app
            .actions
            .iter()
            .flat_map(|a| a.calls())
            .find(|c| c.bug_id.as_deref() == Some("trackpro-3-commit"))
            .unwrap();
        assert!(app.call_visible(commit));
    }
}
