//! Tiny duration/count distributions for API cost models.

use hd_simrt::SimRng;
use serde::{Deserialize, Serialize};

/// A jittered scalar: `base * U[1-spread, 1+spread]`.
///
/// This is the only distribution the cost models need: every operation
/// has a typical magnitude plus execution-to-execution variation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dist {
    /// Typical value.
    pub base: u64,
    /// Relative half-width of the uniform band (clamped to `[0, 0.95]`).
    pub spread: f64,
}

impl Dist {
    /// A constant (zero-spread) distribution.
    pub const fn fixed(base: u64) -> Dist {
        Dist { base, spread: 0.0 }
    }

    /// A zero distribution.
    pub const ZERO: Dist = Dist::fixed(0);

    /// Creates a distribution with the given base and spread.
    pub const fn new(base: u64, spread: f64) -> Dist {
        Dist { base, spread }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.base == 0 {
            return 0;
        }
        if self.spread <= 0.0 {
            return self.base;
        }
        (self.base as f64 * rng.jitter(self.spread)).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::seed_from_u64(1);
        let d = Dist::fixed(500);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 500);
        }
    }

    #[test]
    fn zero_stays_zero() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(Dist::ZERO.sample(&mut rng), 0);
        assert_eq!(Dist::new(0, 0.9).sample(&mut rng), 0);
    }

    #[test]
    fn spread_stays_in_band() {
        let mut rng = SimRng::seed_from_u64(2);
        let d = Dist::new(1000, 0.3);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((700..=1300).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn samples_vary() {
        let mut rng = SimRng::seed_from_u64(3);
        let d = Dist::new(1_000_000, 0.2);
        let a = d.sample(&mut rng);
        let b = d.sample(&mut rng);
        assert_ne!(a, b);
    }
}
