//! A multi-device field study with fleet report aggregation.
//!
//! The paper deploys Hang Doctor on 20 users' devices for 60 days and
//! aggregates the per-device findings into one Hang Bug Report per app
//! (Figure 2(b): occurrence percentages across devices). This example
//! runs AndStatus on several simulated devices — each with its own seed
//! and usage pattern — merges the reports, and prints the fleet view.
//!
//! Run with: `cargo run --release --example field_study`

use hang_doctor_repro::appmodel::corpus::table5;
use hang_doctor_repro::appmodel::{build_run, generate_schedule, CompiledApp, TraceParams};
use hang_doctor_repro::hangdoctor::{
    shared, BlockingApiDb, HangBugReport, HangDoctor, HangDoctorConfig,
};
use hang_doctor_repro::simrt::{SimConfig, SimRng};

const DEVICES: u32 = 6;

fn main() {
    let app = table5::andstatus();
    let compiled = CompiledApp::new(app.clone());
    let db = shared(BlockingApiDb::documented(2017));

    let mut fleet = HangBugReport::new(&app.name);
    for device in 1..=DEVICES {
        // Each device has its own usage pattern and seed.
        let mut rng = SimRng::seed_from_u64(1000 + device as u64);
        let schedule = generate_schedule(
            &app,
            TraceParams {
                actions: 70,
                think_min_ms: 1_200,
                think_max_ms: 4_500,
            },
            &mut rng,
        );
        let mut run = build_run(
            &compiled,
            &schedule,
            SimConfig {
                seed: 9_000 + device as u64,
                ..SimConfig::default()
            },
            9_000 + device as u64,
        );
        let (probe, output) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            device,
            Some(db.clone()),
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = output.borrow();
        println!(
            "device {device}: {} executions, {} deep analyses, {} bug rows",
            run.sim.records().len(),
            out.detections.len(),
            out.report.entries().len()
        );
        fleet.merge(&out.report);
    }

    println!("\n== fleet-aggregated report ({DEVICES} devices) ==");
    println!("{}", fleet.render());

    println!("== blocking APIs learned fleet-wide ==");
    for (symbol, found_in) in db.lock().discovered() {
        println!("  {symbol}   (first diagnosed in {found_in})");
    }
}
