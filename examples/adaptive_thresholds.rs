//! Automatic filter adaptation (paper Section 3.3.1, "Automatic
//! Adaptation of the Filter").
//!
//! A device whose scheduler behaves differently (busier system load, so
//! UI work also accumulates positive context-switch differences) makes
//! the shipped `cs > 0` threshold produce false positives. The periodic
//! background data collection notices; a *light* adaptation re-fits the
//! thresholds on-device, and if false negatives remain, a *heavy*
//! (server-side) adaptation re-runs the full event selection.
//!
//! Run with: `cargo run --release --example adaptive_thresholds`

use hang_doctor_repro::hangdoctor::adaptation::paper_filter;
use hang_doctor_repro::hangdoctor::{
    collect_samples, heavy_adaptation, light_adaptation, rank_events, training_set, DiffMode,
    SymptomThresholds, TrainingSample,
};
use hang_doctor_repro::simrt::HwEvent;

/// Simulates the drifted device by shifting every sample's context-switch
/// difference upward (a device whose background load preempts the main
/// thread more).
fn drift(samples: &[TrainingSample], cs_shift: f64) -> Vec<TrainingSample> {
    samples
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.diff[HwEvent::ContextSwitches.index()] += cs_shift;
            s.main_only[HwEvent::ContextSwitches.index()] += cs_shift;
            s
        })
        .collect()
}

fn report(tag: &str, c: (usize, usize, usize, usize)) {
    let (tp, fp, fneg, tn) = c;
    println!("{tag}: tp={tp} fp={fp} fn={fneg} tn={tn}");
}

fn main() {
    // Background data collection: labeled samples from the device.
    println!("collecting labeled samples (periodic background collection)...");
    let baseline = collect_samples(&training_set(), 5, 42);
    println!("  {} samples collected\n", baseline.len());

    let shipped = paper_filter(SymptomThresholds::default());
    println!("shipped filter: {:?}\n", shipped.conditions);

    // On the reference device the shipped thresholds work.
    report(
        "reference device ",
        shipped.evaluate(&baseline, DiffMode::MainMinusRender),
    );

    // A drifted device: UI work now also shows positive cs differences.
    let drifted = drift(&baseline, 35.0);
    report(
        "drifted device   ",
        shipped.evaluate(&drifted, DiffMode::MainMinusRender),
    );

    // Light adaptation: same events, re-fitted thresholds, on-device.
    let light = light_adaptation(&shipped, &drifted, DiffMode::MainMinusRender);
    println!("\nlight adaptation: {:?}", light.filter.conditions);
    report("after light      ", light.after);

    if light.needs_heavy {
        // Heavy adaptation: full re-ranking and event re-selection,
        // run server-side on the uploaded samples.
        let heavy = heavy_adaptation(&drifted, DiffMode::MainMinusRender, 4);
        println!("\nheavy adaptation selected: {:?}", heavy.filter.conditions);
        report("after heavy      ", heavy.after);
    } else {
        println!("\nlight adaptation sufficed; no server-side pass needed");
    }

    // For context: what the drifted device's own correlation ranking
    // looks like (the heavy pass would start from this).
    println!("\ndrifted-device top-5 correlated events:");
    for (e, c) in rank_events(&drifted, DiffMode::MainMinusRender)
        .iter()
        .take(5)
    {
        println!("  {:<20} {:+.3}", e.name(), c);
    }
}
