//! The full K9-mail diagnosis loop (paper Sections 4.3 and 3.2).
//!
//! Walks through what Hang Doctor does step by step on the `open email`
//! action, then closes the loop the paper describes in Figure 2(a): the
//! previously unknown `HtmlCleaner.clean` API is added to the shared
//! blocking-API database, after which the *offline* scanner starts
//! catching the bug in other apps too.
//!
//! Run with: `cargo run --release --example k9mail_diagnosis`

use hang_doctor_repro::appmodel::corpus::table5;
use hang_doctor_repro::appmodel::{build_run, CompiledApp, Schedule};
use hang_doctor_repro::baselines::{missed_bugs, scan_app};
use hang_doctor_repro::hangdoctor::{shared, BlockingApiDb, HangDoctor, HangDoctorConfig};
use hang_doctor_repro::simrt::{SimConfig, SimTime};

fn main() {
    let app = table5::k9mail();
    let compiled = CompiledApp::new(app.clone());

    // Before: what a 2017 PerfChecker-style offline scan sees.
    let offline = BlockingApiDb::documented(2017);
    println!("== offline scan, before Hang Doctor ==");
    println!(
        "findings: {} | ground-truth bugs missed: {:?}\n",
        scan_app(&app, &offline).len(),
        missed_bugs(&app, &offline)
            .iter()
            .map(|b| b.id.as_str())
            .collect::<Vec<_>>()
    );

    // Drive three "open email" executions with Hang Doctor attached to a
    // fleet-shared database.
    let open_email = app
        .actions
        .iter()
        .find(|a| a.name == "open email")
        .expect("k9 model has 'open email'")
        .uid;
    let schedule = Schedule {
        arrivals: (0..3)
            .map(|i| (SimTime::from_ms(500 + i * 5_000), open_email))
            .collect(),
    };
    let db = shared(BlockingApiDb::documented(2017));
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), 42);
    let (probe, output) = HangDoctor::new(
        HangDoctorConfig::default(),
        &app.name,
        &app.package,
        1,
        Some(db.clone()),
    );
    run.sim.add_probe(Box::new(probe));
    run.sim.run();

    println!("== runtime detection ==");
    let out = output.borrow();
    for (i, rec) in run.sim.records().iter().enumerate() {
        println!(
            "execution {}: response {:.0} ms",
            i + 1,
            rec.max_response_ns() as f64 / 1e6
        );
    }
    for (uid, verdict) in &out.verdicts {
        println!(
            "S-Checker (action {:?}): cs diff {:+.0}, task-clock diff {:+.2e}, page-fault diff {:+.0} -> {}",
            uid,
            verdict.diffs.context_switches,
            verdict.diffs.task_clock,
            verdict.diffs.page_faults,
            if verdict.suspicious { "SUSPICIOUS" } else { "normal" }
        );
    }
    for d in &out.detections {
        let root = d.root.as_ref().expect("diagnosis");
        println!(
            "Diagnoser: {} stack traces; root cause {} ({}:{}) occurrence {:.0}% -> {:?}",
            d.samples,
            root.symbol,
            root.file,
            root.line,
            100.0 * root.occurrence_factor,
            root.kind,
        );
    }
    println!("\n{}", out.report.render());

    // After: the shared database learned the new API; the offline scan
    // now catches the bug (Figure 2(a)'s feedback arrow).
    println!("== offline scan, after Hang Doctor's update ==");
    let learned = db.lock();
    println!(
        "database grew to {} entries; newly discovered: {:?}",
        learned.len(),
        learned.discovered()
    );
    println!(
        "ground-truth bugs still missed offline: {:?}",
        missed_bugs(&app, &learned)
            .iter()
            .map(|b| b.id.as_str())
            .collect::<Vec<_>>()
    );
}
