//! Quickstart: install Hang Doctor into an app and read its report.
//!
//! Builds the K9-mail model, drives a short user session through the
//! simulated runtime with Hang Doctor installed, and prints the
//! developer-facing Hang Bug Report plus the monitoring overhead.
//!
//! Run with: `cargo run --release --example quickstart`

use hang_doctor_repro::appmodel::corpus::table5;
use hang_doctor_repro::appmodel::{build_run, generate_schedule, CompiledApp, TraceParams};
use hang_doctor_repro::hangdoctor::{HangDoctor, HangDoctorConfig};
use hang_doctor_repro::metrics::OverheadReport;
use hang_doctor_repro::simrt::{SimConfig, SimRng};

fn main() {
    // 1. Pick an app model (K9-mail carries the HtmlCleaner.clean bug of
    //    the paper's Figure 6) and compile it.
    let app = table5::k9mail();
    println!(
        "app: {} ({} actions, {} known ground-truth bugs)\n",
        app.name,
        app.actions.len(),
        app.bugs.len()
    );
    let compiled = CompiledApp::new(app.clone());

    // 2. Generate a seeded user session: 80 weighted actions with think
    //    time, like a user reading email for a few minutes.
    let mut rng = SimRng::seed_from_u64(7);
    let schedule = generate_schedule(&app, TraceParams::default(), &mut rng);

    // 3. Load the simulator and install Hang Doctor, exactly as a
    //    developer embeds it into an app: no OS modification, just an
    //    extra lightweight component.
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), 7);
    let cfg = HangDoctorConfig::builder()
        .monitor_network(true)
        .build()
        .expect("paper-default configuration is valid");
    let (probe, output) =
        HangDoctor::new(cfg, &app.name, &app.package, /* device id */ 1, None);
    run.sim.add_probe(Box::new(probe));

    // 4. Run the session.
    let summary = run.sim.run();
    println!(
        "simulated {} action executions over {:.1} s of device time\n",
        summary.actions_completed,
        summary.ended_at.as_secs_f64()
    );

    // 5. Read the report.
    let out = output.borrow();
    println!("{}", out.report.render());
    println!(
        "phase-1 checks: {} (marked suspicious: {}); phase-2 deep analyses: {}",
        out.schecker_checks,
        out.suspicious_marks,
        out.detections.len()
    );
    let overhead = OverheadReport::from_sim(&run.sim);
    println!(
        "monitoring overhead: {:.2}% CPU, {:.2}% memory (avg {:.2}%)",
        overhead.cpu_pct,
        overhead.mem_pct,
        overhead.avg_pct()
    );
}
