//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces the fleet engine uses:
//!
//! * [`thread::scope`] — scoped spawning with the crossbeam call shape
//!   (`scope(|s| ...)` returns `thread::Result<R>`, and `s.spawn(|_| ...)`
//!   passes the scope back into the closure), implemented on top of
//!   `std::thread::scope`.
//! * [`queue::SegQueue`] — an unbounded MPMC queue. The real crate is
//!   lock-free; this stand-in is a mutex-wrapped `VecDeque`, which has
//!   identical semantics and is plenty for work distribution at fleet
//!   shard granularity.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::marker::PhantomData;
    use std::thread as stdthread;

    /// Result of a scope body or a joined scoped thread.
    pub type Result<T> = stdthread::Result<T>;

    /// A scope handle passed to [`scope`] closures; spawn borrows
    /// non-`'static` data that outlives the scope.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again,
        /// matching crossbeam's `|s| ...` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
                _marker: PhantomData,
            }
        }
    }

    /// Creates a scope in which non-`'static` data can be borrowed by
    /// spawned threads. All threads are joined before `scope` returns.
    ///
    /// Unlike `std::thread::scope`, the crossbeam form returns
    /// `Result<R>`; the std implementation already propagates panics
    /// from unjoined threads, so the body's value arrives as `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Concurrent queues, mirroring `crossbeam::queue`.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue (mutex-backed stand-in for the
    /// lock-free original).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends an element to the back of the queue.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Removes the element at the front, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Returns the number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Returns true if the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3];
        let total = thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u64>());
            let h2 = s.spawn(|_| data.len() as u64);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 9);
    }

    #[test]
    fn segqueue_is_fifo_across_threads() {
        let q = SegQueue::new();
        for i in 0..100u32 {
            q.push(i);
        }
        let drained = thread::scope(|s| {
            let h = s.spawn(|_| {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(drained.len(), 100);
        assert!(drained.windows(2).all(|w| w[0] < w[1]));
        assert!(q.is_empty());
    }
}
