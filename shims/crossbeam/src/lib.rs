//! Offline stand-in for `crossbeam`.
//!
//! Provides the three pieces the fleet and telemetry engines use:
//!
//! * [`thread::scope`] — scoped spawning with the crossbeam call shape
//!   (`scope(|s| ...)` returns `thread::Result<R>`, and `s.spawn(|_| ...)`
//!   passes the scope back into the closure), implemented on top of
//!   `std::thread::scope`.
//! * [`queue::SegQueue`] — an unbounded MPMC queue. The real crate is
//!   lock-free; this stand-in is a mutex-wrapped `VecDeque`, which has
//!   identical semantics and is plenty for work distribution at fleet
//!   shard granularity.
//! * [`channel`] — bounded MPMC channels with crossbeam's
//!   `send`/`try_send`/`recv` surface and disconnect semantics,
//!   implemented with a mutex + two condvars. The telemetry ingestion
//!   server uses `try_send` failure as its backpressure signal.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::marker::PhantomData;
    use std::thread as stdthread;

    /// Result of a scope body or a joined scoped thread.
    pub type Result<T> = stdthread::Result<T>;

    /// A scope handle passed to [`scope`] closures; spawn borrows
    /// non-`'static` data that outlives the scope.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again,
        /// matching crossbeam's `|s| ...` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
                _marker: PhantomData,
            }
        }
    }

    /// Creates a scope in which non-`'static` data can be borrowed by
    /// spawned threads. All threads are joined before `scope` returns.
    ///
    /// Unlike `std::thread::scope`, the crossbeam form returns
    /// `Result<R>`; the std implementation already propagates panics
    /// from unjoined threads, so the body's value arrives as `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Concurrent queues, mirroring `crossbeam::queue`.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue (mutex-backed stand-in for the
    /// lock-free original).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends an element to the back of the queue.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Removes the element at the front, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Returns the number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Returns true if the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }
}

/// Bounded MPMC channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the value is handed back.
        Full(T),
        /// Every receiver is gone; the value is handed back.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Whether this is the capacity (retryable) case.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> MutexGuard<'_, Inner<T>> {
            match self.inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half of a bounded channel. Cloneable; the channel
    /// disconnects for receivers when the last clone drops.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a bounded channel. Cloneable; the channel
    /// disconnects for senders when the last clone drops.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates a bounded channel holding at most `cap` queued messages.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (rendezvous channels are not modeled).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails only
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.cap {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                inner = match self.chan.not_full.wait(inner) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Enqueues `value` if there is room right now; never blocks.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.chan.lock();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.queue.len() >= inner.cap {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.chan.lock();
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails only when the channel
        /// is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.chan.lock();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = match self.chan.not_empty.wait(inner) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Dequeues a message if one is queued right now; never blocks.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.lock();
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of currently queued messages.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// Whether no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.chan.lock().queue.is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.chan.lock();
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                self.chan.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, TrySendError};
    use super::queue::SegQueue;
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3];
        let total = thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u64>());
            let h2 = s.spawn(|_| data.len() as u64);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 9);
    }

    #[test]
    fn segqueue_is_fifo_across_threads() {
        let q = SegQueue::new();
        for i in 0..100u32 {
            q.push(i);
        }
        let drained = thread::scope(|s| {
            let h = s.spawn(|_| {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(drained.len(), 100);
        assert!(drained.windows(2).all(|w| w[0] < w[1]));
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_channel_try_send_signals_full_then_accepts() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_channel_disconnects_when_senders_drop() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_channel_blocking_send_wakes_on_recv() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(0).unwrap();
        thread::scope(|s| {
            let h = s.spawn(|_| {
                for i in 1..=50u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..=50 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..=50).collect::<Vec<u32>>());
        })
        .unwrap();
    }

    #[test]
    fn bounded_channel_send_errors_when_receiver_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }
}
