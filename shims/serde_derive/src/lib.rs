//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls against the value-tree
//! traits in the workspace's `serde` shim. Because the build
//! environment has no crates.io access, this proc macro cannot use
//! `syn`/`quote`; it parses the derive input token stream by hand.
//!
//! Supported shapes (everything the workspace derives on):
//! named-field structs, tuple structs (single-field newtypes serialize
//! transparently), unit structs, and enums with unit / newtype / tuple
//! / struct variants (externally tagged, like real serde). `#[serde]`
//! attributes and generic types are intentionally unsupported and
//! produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive target.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn ident_of(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Skips `#[...]` attribute sequences (including doc comments, which
/// arrive as `#[doc = "..."]`).
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && ident_of(&toks[i]).as_deref() == Some("pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);

    let kw = ident_of(&toks[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("expected item name");
    i += 1;

    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        assert!(
            p.as_char() != '<',
            "serde shim derive does not support generic type `{name}`"
        );
    }

    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_segments(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive supports struct/enum only, got `{other}`"),
    };

    Item { name, shape }
}

/// Parses `name: Type, ...` field lists, tolerating attributes,
/// visibility, and generic types containing commas (angle-bracket depth
/// is tracked; `>` never takes the depth below zero, so `->` in
/// function types is harmless).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let field = ident_of(&toks[i]).expect("expected field name");
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{field}`, got {other:?}"),
        }
        fields.push(field);
        i = skip_to_top_level_comma(&toks, i);
    }
    fields
}

/// Advances past one type/expression to just after the next top-level
/// comma (or to the end).
fn skip_to_top_level_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth: usize = 0;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Counts comma-separated segments (tuple-struct / tuple-variant arity).
fn count_top_level_segments(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        count += 1;
        i = skip_to_top_level_comma(&toks, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("expected variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_segments(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip any explicit discriminant (`= expr`) up to the comma.
        i = skip_to_top_level_comma(&toks, i);
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![\
             (::std::string::String::from(\"{vname}\"), \
             ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                .collect();
            format!(
                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Array(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Object(::std::vec![{}]))]),",
                pairs.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__pairs, \"{f}\")?,"))
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Object(__pairs) => \
                 ::std::result::Result::Ok({name} {{ {} }}),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected object for struct {name}\")),\n\
                 }}",
                inits.join(" ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected {n}-element array for struct {name}\")),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| de_tagged_arm(name, v))
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"unknown variant `{{__s}}` of enum {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"unknown variant `{{__tag}}` of enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected variant of enum {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn de_tagged_arm(name: &str, v: &Variant) -> Option<String> {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => None,
        VariantKind::Tuple(1) => Some(format!(
            "\"{vname}\" => ::std::result::Result::Ok(\
             {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
        )),
        VariantKind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            Some(format!(
                "\"{vname}\" => match __inner {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}::{vname}({})),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected {n}-element array for variant {name}::{vname}\")),\n\
                 }},",
                items.join(", ")
            ))
        }
        VariantKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__fields, \"{f}\")?,"))
                .collect();
            Some(format!(
                "\"{vname}\" => match __inner {{\n\
                 ::serde::Value::Object(__fields) => \
                 ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected object for variant {name}::{vname}\")),\n\
                 }},",
                inits.join(" ")
            ))
        }
    }
}
