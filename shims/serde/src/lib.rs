//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate supplies
//! the serde surface the workspace actually uses: `Serialize` /
//! `Deserialize` traits (re-exported together with same-named derive
//! macros under the `derive` feature) plus impls for primitives,
//! tuples, and std collections.
//!
//! The design is value-tree based rather than visitor based: both
//! traits go through the [`Value`] intermediate representation, and
//! `serde_json` renders/parses that tree. Two properties matter for the
//! repro and are guaranteed here:
//!
//! * **Determinism.** Unordered collections (`HashMap`, `HashSet`)
//!   serialize with sorted keys/elements, so the same in-memory state
//!   always produces byte-identical JSON — the fleet engine's
//!   thread-count-independence test relies on this.
//! * **serde-compatible shapes.** Structs become objects in field
//!   declaration order, newtype structs are transparent, enums are
//!   externally tagged, `None` is `null`, and integer map keys become
//!   JSON string keys.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization error (also used by `serde_json`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Intermediate representation every serializable value lowers to.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always < 0; non-negatives normalize to `UInt`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value object. Struct fields keep declaration order;
    /// map-backed objects are pre-sorted by their `Serialize` impls.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Total order used to sort set elements deterministically.
    fn canonical_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::UInt(_) | Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Array(_) => 4,
                Value::Object(_) => 5,
            }
        }
        fn as_f64(v: &Value) -> f64 {
            match v {
                Value::UInt(n) => *n as f64,
                Value::Int(n) => *n as f64,
                Value::Float(f) => *f,
                _ => 0.0,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::UInt(a), Value::UInt(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.canonical_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Object(a), Value::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.canonical_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) if rank(a) == 2 && rank(b) == 2 => as_f64(a).total_cmp(&as_f64(b)),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the intermediate representation.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the intermediate representation.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {}",
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain `'static`. Only small audit labels
    /// deserialize through this in the workspace; real serde borrows
    /// from the input instead, which a value-tree design cannot.
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_value: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pointers and wrappers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequences and tuples
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == N => {
                let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                Ok(vec.try_into().unwrap_or_else(|_| unreachable!()))
            }
            other => Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of length {}, got {}",
                        LEN,
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// ---------------------------------------------------------------------------
// Maps and sets
// ---------------------------------------------------------------------------

/// Renders a serialized key as a JSON object key, the way serde_json
/// does for integer-keyed maps.
fn key_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!(
            "map key must be a string or integer, got {}",
            other.type_name()
        ))),
    }
}

/// Rebuilds a key type from its JSON object-key string by retrying the
/// numeric interpretations integer-keyed maps serialize through.
fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    if s == "true" || s == "false" {
        if let Ok(k) = K::from_value(&Value::Bool(s == "true")) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot interpret map key `{s}`")))
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            let key = key_string(&k.to_value()).expect("unsupported map key type");
            (key, v.to_value())
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Object(pairs)
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_str::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_str::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.type_name()
            ))),
        }
    }
}

fn set_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    let mut values: Vec<Value> = items.map(Serialize::to_value).collect();
    values.sort_by(|a, b| a.canonical_cmp(b));
    Value::Array(values)
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        set_to_value(self.iter())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        set_to_value(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.type_name()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Derive support
// ---------------------------------------------------------------------------

/// Looks up a struct field during derived deserialization. A missing
/// field falls back to deserializing from `Null`, which succeeds for
/// `Option` fields (serde's implicit-`None` behavior) and produces a
/// clear error otherwise.
#[doc(hidden)]
pub fn __field<T: Deserialize>(pairs: &[(String, Value)], name: &str) -> Result<T, Error> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_serialize_sorted() {
        let mut m = HashMap::new();
        m.insert(10u64, "b".to_string());
        m.insert(2u64, "a".to_string());
        match m.to_value() {
            Value::Object(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["10", "2"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn integer_map_keys_roundtrip() {
        let mut m = HashMap::new();
        m.insert(7u32, vec![1u64, 2]);
        let v = m.to_value();
        let back: HashMap<u32, Vec<u64>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_handles_missing_fields() {
        let pairs = vec![("present".to_string(), Value::UInt(3))];
        let present: Option<u64> = __field(&pairs, "present").unwrap();
        let absent: Option<u64> = __field(&pairs, "absent").unwrap();
        assert_eq!(present, Some(3));
        assert_eq!(absent, None);
        let err = __field::<u64>(&pairs, "absent").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn sets_serialize_sorted() {
        let mut s = HashSet::new();
        s.insert(30u64);
        s.insert(4u64);
        s.insert(100u64);
        assert_eq!(
            s.to_value(),
            Value::Array(vec![Value::UInt(4), Value::UInt(30), Value::UInt(100)])
        );
    }
}
