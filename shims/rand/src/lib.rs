//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of the rand 0.10 API the repro uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension methods `random` / `random_range`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is all the simulation needs (every stochastic
//! decision flows through a fixed seed).

/// Low-level generator interface: a source of 64 uniformly random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the subset the repro uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for generating typed values, mirroring rand 0.10.
pub trait RngExt: RngCore + Sized {
    /// Generates a uniformly random value of `T` over its natural range
    /// (`[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Generates a uniform value in the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<G: RngCore + Sized> RngExt for G {}

/// Types that can be drawn uniformly from their natural range.
pub trait Random: Sized {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire's method,
/// widening-multiply with rejection).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Random::random(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&v));
            let w = rng.random_range(-3i64..3);
            assert!((-3..3).contains(&w));
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let i = rng.random_range(0usize..7);
            assert!(i < 7);
        }
    }

    #[test]
    fn bounded_draws_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
