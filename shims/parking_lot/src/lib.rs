//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API shape the
//! workspace uses: `lock()` / `read()` / `write()` return guards
//! directly (no `Result`), and a poisoned lock is treated as still
//! usable rather than an error, matching parking_lot's non-poisoning
//! semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive, API-compatible with `parking_lot::Mutex`
/// for the operations this workspace performs.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock, API-compatible with `parking_lot::RwLock` for
/// the operations this workspace performs.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_guards_value() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
