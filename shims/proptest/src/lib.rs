//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators, runner, and macros the
//! workspace's property tests use. Differences from real proptest, by
//! design: generation is always deterministic (fixed seed), and failing
//! cases are reported without shrinking — the failing case's inputs are
//! regenerable from the case number because the RNG is fixed.

pub mod strategy {
    use crate::test_runner::{TestRng, TestRunner};
    use rand::RngExt;

    /// A generated value plus (in real proptest) its shrink state. This
    /// stand-in does not shrink; `current` just clones the value.
    pub trait ValueTree {
        /// The type produced by this tree.
        type Value;
        /// Returns the current value.
        fn current(&self) -> Self::Value;
    }

    /// Holder returned by [`Strategy::new_tree`].
    pub struct ValueHolder<T>(pub T);

    impl<T: Clone> ValueTree for ValueHolder<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Generates a value tree (proptest's entry point for manual use).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueHolder<Self::Value>, String> {
            Ok(ValueHolder(self.gen_value(runner.rng())))
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait StrategyDyn<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> StrategyDyn<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn StrategyDyn<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.source.gen_value(rng);
            (self.f)(intermediate).gen_value(rng)
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.inner().random_range(0..self.arms.len());
            self.arms[idx].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.inner().random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.inner().random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner().random()
        }
    }

    macro_rules! impl_arbitrary_num {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner().random()
                }
            }
        )*};
    }
    impl_arbitrary_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy returned by [`any`].
    pub struct ArbStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for ArbStrategy<A> {
        type Value = A;
        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Strategy over all values of `A`.
    pub fn any<A: Arbitrary>() -> ArbStrategy<A> {
        ArbStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;
    use rand::RngExt;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner().random_range(self.size.clone());
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub struct TestRng {
        rng: StdRng,
    }

    impl TestRng {
        /// Direct access to the underlying generator.
        pub fn inner(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives strategy generation.
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed: same values in every run.
        pub fn deterministic() -> Self {
            TestRunner {
                rng: TestRng {
                    rng: StdRng::seed_from_u64(0x70726f_70746573),
                },
            }
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::deterministic()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform random choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Property assertion of equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Property assertion of inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// expands to a `#[test]` (the attribute is written by the caller)
/// running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner = $crate::test_runner::TestRunner::deterministic();
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::gen_value(&($strat), __runner.rng());
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut runner = TestRunner::deterministic();
        let strat = crate::collection::vec((0u64..10, -5i32..5), 2..6);
        for _ in 0..100 {
            let v = strat.new_tree(&mut runner).unwrap().current();
            assert!((2..6).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 10);
                assert!((-5..5).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_maps_compose() {
        let mut runner = TestRunner::deterministic();
        let strat = prop_oneof![
            (0u64..5).prop_map(|n| n * 2),
            Just(100u64),
            (0u64..3).prop_flat_map(|n| n * 10..n * 10 + 1),
        ];
        let mut saw_just = false;
        for _ in 0..200 {
            let v = strat.new_tree(&mut runner).unwrap().current();
            assert!(v == 100 || v < 21);
            saw_just |= v == 100;
        }
        assert!(saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_provides_inputs(x in 0u64..100, flag in any::<bool>(),) {
            prop_assert!(x < 100);
            prop_assert_eq!(u64::from(flag) <= 1, true);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn inner(x in 10u64..20) {
                prop_assert!(x < 5, "x was {}", x);
            }
        }
        inner();
    }
}
