//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON through the [`serde`] shim's [`Value`]
//! tree. Output formatting matches real serde_json: compact form has
//! no whitespace, pretty form indents by two spaces, floats print via
//! Rust's shortest-roundtrip `{:?}` (so `1.0` stays `1.0`), and
//! strings escape `"` `\\` and control characters.

pub use serde::{Error, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, &mut out);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(0), &mut out);
    Ok(out)
}

/// Deserializes a value of `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(value: &Value, indent: Option<usize>, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Debug is Rust's shortest round-trip form and keeps the
                // trailing `.0` on integral floats, like serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    push_newline_indent(out, level + 1);
                    render(item, Some(level + 1), out);
                } else {
                    render(item, None, out);
                }
            }
            if let Some(level) = indent {
                push_newline_indent(out, level);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    push_newline_indent(out, level + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    render(item, Some(level + 1), out);
                } else {
                    render_string(key, out);
                    out.push(':');
                    render(item, None, out);
                }
            }
            if let Some(level) = indent {
                push_newline_indent(out, level);
            }
            out.push('}');
        }
    }
}

fn push_newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                None => return Err(Error::custom("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    if !self.eat_literal("\\u") {
                        return Err(Error::custom("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                char::from_u32(code)
                    .ok_or_else(|| Error::custom(format!("invalid codepoint {code:#x}")))?
            }
            other => {
                return Err(Error::custom(format!(
                    "invalid escape `\\{}`",
                    other as char
                )))
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| Error::custom(format!("invalid \\u escape `{s}`")))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_serde_json_shape() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Float(1.0), Value::Null]),
            ),
            ("c".to_string(), Value::Str("x\"y".to_string())),
        ]);
        let mut out = String::new();
        render(&v, None, &mut out);
        assert_eq!(out, r#"{"a":1,"b":[1.0,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_indents_two_spaces() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
        )]);
        let mut out = String::new();
        render(&v, Some(0), &mut out);
        assert_eq!(out, "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn parse_roundtrips() {
        let src = r#"{"a":-3,"b":[true,false,null,2.5],"s":"A\n"}"#;
        let v = parse(src).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".to_string(), Value::Int(-3)),
                (
                    "b".to_string(),
                    Value::Array(vec![
                        Value::Bool(true),
                        Value::Bool(false),
                        Value::Null,
                        Value::Float(2.5),
                    ])
                ),
                ("s".to_string(), Value::Str("A\n".to_string())),
            ])
        );
        let mut out = String::new();
        render(&v, None, &mut out);
        let v2 = parse(&out).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn typed_roundtrip_through_traits() {
        let data: Vec<(u64, String)> = vec![(1, "one".into()), (2, "two".into())];
        let json = to_string(&data).unwrap();
        let back: Vec<(u64, String)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("1 2").is_err());
        assert!(from_str::<u64>("true").is_err());
    }
}
