//! Offline stand-in for `criterion`.
//!
//! Provides the criterion API surface the workspace benches use —
//! `Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros — measuring with
//! plain wall-clock timing instead of criterion's statistical engine.
//! Each benchmark warms up briefly, then reports the mean time per
//! iteration over a fixed measurement window.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    sample_size: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call (also forces lazy init).
        std::hint::black_box(routine());

        let budget = Duration::from_millis(200);
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if iters >= self.sample_size || start.elapsed() >= budget {
                break;
            }
        }
        let per_iter = start.elapsed().as_nanos() / u128::from(iters);
        println!(
            "    time: {} per iter ({iters} iterations)",
            format_ns(per_iter)
        );
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the iteration target for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("{}/{}", self.name, id.id);
        f(&mut Bencher {
            sample_size: self.sample_size,
        });
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{}", self.name, id.id);
        f(
            &mut Bencher {
                sample_size: self.sample_size,
            },
            input,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{name}");
        f(&mut Bencher {
            sample_size: self.sample_size,
        });
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion. Cargo
/// passes `--bench` (and possibly filters) on the command line; they
/// are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let _args: Vec<String> = ::std::env::args().collect();
            $($group();)+
        }
    };
}
