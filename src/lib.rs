//! # hang-doctor-repro — top-level facade
//!
//! Reproduction of *Hang Doctor: Runtime Detection and Diagnosis of Soft
//! Hangs for Smartphone Apps* (Brocanelli & Wang, EuroSys '18) as a Rust
//! workspace. This crate re-exports the member crates so examples,
//! integration tests, and downstream users have one import surface:
//!
//! * [`simrt`] — the simulated Android-like runtime (scheduler, Looper,
//!   performance counters, probes);
//! * [`perfmon`] — the simpleperf-analog monitoring stack;
//! * [`appmodel`] — app models and the 114-app study corpus;
//! * [`hangdoctor`] — the paper's contribution (S-Checker + Diagnoser);
//! * [`baselines`] — TI / UT detectors and the offline scanner;
//! * [`metrics`] — ground-truth scoring and overhead accounting;
//! * [`fleet`] — the sharded parallel fleet engine (corpus × device
//!   matrix on a worker pool, lossless result merging);
//! * [`telemetry`] — the networked hang-report ingestion backend
//!   (length-prefixed JSON frames over TCP, idempotent sharded ingest,
//!   cross-device hang-group aggregation) and device-side uploader;
//! * [`bench`] — drivers regenerating every table and figure.
//!
//! Quick start: see `examples/quickstart.rs`, or run
//! `cargo run --release -p hd-bench --bin repro -- all`.

pub use hangdoctor;
pub use hd_appmodel as appmodel;
pub use hd_baselines as baselines;
pub use hd_bench as bench;
pub use hd_fleet as fleet;
pub use hd_metrics as metrics;
pub use hd_perfmon as perfmon;
pub use hd_simrt as simrt;
pub use hd_telemetry as telemetry;
